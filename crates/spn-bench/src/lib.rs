//! Benchmark harness for the SPN processor reproduction.
//!
//! The binaries in `src/bin` regenerate the paper's evaluation artifacts:
//!
//! * `fig2c` — CPU vs GPU throughput while sweeping the GPU thread count,
//! * `table1` — the compute/memory resource table of the four platforms,
//! * `fig4`  — operations/cycle of CPU, GPU, Pvect and Ptree on the nine
//!   benchmark circuits, plus the headline speed-up summary,
//! * `ablation` — sweeps over the design choices (tree depth, register
//!   banks, bank-allocation policy),
//! * `bench_engine` — wall-clock throughput of the two-phase engine at
//!   different evidence batch sizes (`BENCH_engine.json`),
//! * `bench_serve` — open-loop load generator for the `spn-serve` inference
//!   service, sweeping request rate × batching policy × worker count
//!   (`BENCH_serve.json`, appended across runs),
//! * `bench_check` — CI gate validating that the emitted `BENCH_*.json`
//!   files are well-formed, non-empty and schema-consistent,
//! * `record_traces` — regenerates (`--bless`) or verifies (`--check`, the
//!   CI gate) the committed golden per-cycle traces of the multi-core
//!   simulator under `tests/golden_traces/` (cases in [`traces`]),
//! * `spn_lint` — static-analysis gate: lints the shipped benchmark models
//!   and the golden-trace workloads (structural lints, numeric range
//!   analysis at every mode × precision, schedule verification of the
//!   compiled artifacts) plus any SPN text files given as arguments;
//!   `--deny warnings` (the CI mode) fails on any warn-level finding.
//!
//! `bench_engine` and `bench_serve` accept `--smoke` for the fast CI sweep.
//!
//! The library part holds the shared plumbing: running one evidence batch on
//! every platform through the two-phase [`Engine`], checking that every
//! platform computes the same root values, formatting result tables, and
//! the golden-trace case definitions ([`traces`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use serde::{Deserialize, Serialize};
use spn_core::batch::EvidenceBatch;
use spn_core::flatten::OpList;
use spn_core::Spn;
use spn_platforms::{
    Backend, BackendError, CpuModel, Engine, GpuConfig, GpuModel, PerfReport, ProcessorBackend,
};
use spn_processor::ProcessorConfig;

pub mod stats;
pub mod traces;

/// Throughput of one platform on one batched workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlatformResult {
    /// Platform name (`CPU`, `GPU`, `Pvect`, `Ptree`, ...).
    pub platform: String,
    /// Workload name.
    pub workload: String,
    /// SPN arithmetic operations per inference pass.
    pub ops: u64,
    /// Evidence queries executed.
    pub queries: u64,
    /// Total modelled cycles over the whole batch.
    pub cycles: u64,
    /// Amortised cycles per query.
    pub cycles_per_query: f64,
    /// Effective throughput in operations per cycle.
    pub ops_per_cycle: f64,
    /// Root value of the batch's first query (for cross-checking).
    pub value: f64,
}

impl PlatformResult {
    fn from_perf(workload: &str, first_value: f64, perf: &PerfReport) -> Self {
        PlatformResult {
            platform: perf.platform.clone(),
            workload: workload.to_string(),
            ops: perf.source_ops.checked_div(perf.queries).unwrap_or(0),
            queries: perf.queries,
            cycles: perf.cycles,
            cycles_per_query: perf.cycles_per_query(),
            ops_per_cycle: perf.ops_per_cycle(),
            value: first_value,
        }
    }
}

/// One platform's batched run: the tabulated summary plus the per-query root
/// values (used for cross-platform parity checks).
#[derive(Debug, Clone, PartialEq)]
pub struct PlatformRun {
    /// Tabulated summary.
    pub result: PlatformResult,
    /// Root value of every query, in batch order.
    pub values: Vec<f64>,
}

/// Compiles `ops` for `backend` and executes `batch` through a fresh
/// [`Engine`].
///
/// # Errors
///
/// Returns an error when compilation fails or the batch does not match the
/// workload.
pub fn run_backend<B: Backend>(
    workload: &str,
    backend: B,
    ops: &OpList,
    batch: &EvidenceBatch,
) -> Result<PlatformRun, BackendError> {
    let mut engine = Engine::from_ops(backend, ops)?;
    let out = engine.execute_batch(batch)?;
    let first = out.values.first().copied().unwrap_or(0.0);
    Ok(PlatformRun {
        result: PlatformResult::from_perf(workload, first, &out.perf),
        values: out.values,
    })
}

/// Runs the CPU baseline model over `batch`.
///
/// # Errors
///
/// Returns an error when the batch does not match the workload.
pub fn run_cpu(
    workload: &str,
    ops: &OpList,
    batch: &EvidenceBatch,
) -> Result<PlatformRun, BackendError> {
    run_backend(workload, CpuModel::new(), ops, batch)
}

/// Runs the GPU baseline model with `threads` threads per block.
///
/// # Errors
///
/// Returns an error when the batch does not match the workload.
pub fn run_gpu(
    workload: &str,
    ops: &OpList,
    batch: &EvidenceBatch,
    threads: usize,
) -> Result<PlatformRun, BackendError> {
    let model = GpuModel::with_config(GpuConfig {
        name: if threads == 256 {
            "GPU".to_string()
        } else {
            format!("GPU-{threads}")
        },
        ..GpuConfig::with_threads(threads)
    });
    run_backend(workload, model, ops, batch)
}

/// Compiles the workload for `config` once and runs `batch` on the
/// cycle-accurate processor simulator.
///
/// # Errors
///
/// Returns an error when compilation or simulation fails.
pub fn run_processor(
    workload: &str,
    ops: &OpList,
    batch: &EvidenceBatch,
    config: &ProcessorConfig,
) -> Result<PlatformRun, BackendError> {
    run_backend(workload, ProcessorBackend::new(config.clone())?, ops, batch)
}

/// Runs one batched workload on all four platforms of Fig. 4 (CPU, GPU,
/// Pvect, Ptree) and cross-checks that every platform computes the same root
/// value for every query.
///
/// # Errors
///
/// Returns an error when any platform fails or disagrees on any value.
pub fn run_all_platforms(
    workload: &str,
    spn: &Spn,
    batch: &EvidenceBatch,
) -> Result<Vec<PlatformResult>, BackendError> {
    let ops = OpList::from_spn(spn);
    let runs = vec![
        run_cpu(workload, &ops, batch)?,
        run_gpu(workload, &ops, batch, 256)?,
        run_processor(workload, &ops, batch, &ProcessorConfig::pvect())?,
        run_processor(workload, &ops, batch, &ProcessorConfig::ptree())?,
    ];
    let reference = &runs[0].values;
    for run in &runs[1..] {
        if run.values.len() != reference.len() {
            return Err(format!(
                "platform {} returned {} values for a {}-query batch on {}",
                run.result.platform,
                run.values.len(),
                reference.len(),
                workload
            )
            .into());
        }
        for (q, (value, expected)) in run.values.iter().zip(reference).enumerate() {
            let tolerance = 1e-9 * expected.abs().max(1e-30);
            if (value - expected).abs() > tolerance {
                return Err(format!(
                    "platform {} disagrees on {} query {}: {} vs {}",
                    run.result.platform, workload, q, value, expected
                )
                .into());
            }
        }
    }
    Ok(runs.into_iter().map(|r| r.result).collect())
}

/// Formats results as a GitHub-flavoured markdown table with one row per
/// workload and one column per platform (operations per cycle).
pub fn markdown_table(results: &[PlatformResult]) -> String {
    let mut workloads: Vec<String> = Vec::new();
    let mut platforms: Vec<String> = Vec::new();
    for r in results {
        if !workloads.contains(&r.workload) {
            workloads.push(r.workload.clone());
        }
        if !platforms.contains(&r.platform) {
            platforms.push(r.platform.clone());
        }
    }
    let mut out = String::new();
    out.push_str("| workload | ");
    out.push_str(&platforms.join(" | "));
    out.push_str(" |\n|---|");
    out.push_str(&"---|".repeat(platforms.len()));
    out.push('\n');
    for w in &workloads {
        out.push_str(&format!("| {w} |"));
        for p in &platforms {
            let cell = results
                .iter()
                .find(|r| &r.workload == w && &r.platform == p)
                .map(|r| format!(" {:.2} |", r.ops_per_cycle))
                .unwrap_or_else(|| " - |".to_string());
            out.push_str(&cell);
        }
        out.push('\n');
    }
    out
}

/// Escapes a string for inclusion in a JSON document.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Serialises a finite `f64` for JSON (non-finite values become `null`).
pub fn json_number(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Serialises results to pretty JSON (hand-rolled: the offline build has no
/// serde_json; consumed when updating EXPERIMENTS.md).
pub fn to_json(results: &[PlatformResult]) -> String {
    let mut out = String::from("[\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str(&format!(
            concat!(
                "  {{\n",
                "    \"platform\": \"{}\",\n",
                "    \"workload\": \"{}\",\n",
                "    \"ops\": {},\n",
                "    \"queries\": {},\n",
                "    \"cycles\": {},\n",
                "    \"cycles_per_query\": {},\n",
                "    \"ops_per_cycle\": {},\n",
                "    \"value\": {}\n",
                "  }}{}\n",
            ),
            json_escape(&r.platform),
            json_escape(&r.workload),
            r.ops,
            r.queries,
            r.cycles,
            json_number(r.cycles_per_query),
            json_number(r.ops_per_cycle),
            json_number(r.value),
            if i + 1 == results.len() { "" } else { "," },
        ));
    }
    out.push_str("]\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use spn_core::Evidence;
    use spn_learn::Benchmark;

    fn mixed_batch(num_vars: usize) -> EvidenceBatch {
        let mut batch = EvidenceBatch::new(num_vars);
        batch.push_marginal();
        batch
            .push_assignment(&vec![true; num_vars])
            .expect("assignment arity");
        let mut partial = Evidence::marginal(num_vars);
        partial.observe(0, false);
        batch.push(&partial).expect("evidence arity");
        batch
    }

    #[test]
    fn all_platforms_agree_on_a_small_benchmark_batch() {
        let spn = Benchmark::Banknote.spn();
        let batch = mixed_batch(spn.num_vars());
        let results = run_all_platforms("Banknote", &spn, &batch).unwrap();
        assert_eq!(results.len(), 4);
        let names: Vec<&str> = results.iter().map(|r| r.platform.as_str()).collect();
        assert_eq!(names, vec!["CPU", "GPU", "Pvect", "Ptree"]);
        assert!(results.iter().all(|r| r.queries == 3));
        assert!(results.iter().all(|r| r.cycles_per_query > 0.0));
    }

    #[test]
    fn ptree_outperforms_the_baselines_on_a_medium_benchmark() {
        let spn = Benchmark::EegEye.spn();
        let batch = mixed_batch(spn.num_vars());
        let results = run_all_platforms("EEG-eye", &spn, &batch).unwrap();
        let get = |name: &str| {
            results
                .iter()
                .find(|r| r.platform == name)
                .unwrap()
                .ops_per_cycle
        };
        assert!(get("Ptree") > get("CPU"));
        assert!(get("Ptree") > get("GPU"));
        assert!(get("Ptree") > get("Pvect"));
    }

    #[test]
    fn markdown_table_mentions_every_platform() {
        let spn = Benchmark::Banknote.spn();
        let batch = mixed_batch(spn.num_vars());
        let results = run_all_platforms("Banknote", &spn, &batch).unwrap();
        let table = markdown_table(&results);
        for p in ["CPU", "GPU", "Pvect", "Ptree", "Banknote"] {
            assert!(table.contains(p), "missing {p} in\n{table}");
        }
        let json = to_json(&results);
        assert!(json.contains("Ptree"));
        assert!(json.contains("\"queries\": 3"));
    }

    #[test]
    fn json_escaping_handles_special_characters() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_number(f64::NAN), "null");
        assert_eq!(json_number(2.5), "2.5");
    }
}
