//! Benchmark harness for the SPN processor reproduction.
//!
//! The binaries in `src/bin` regenerate the paper's evaluation artifacts:
//!
//! * `fig2c` — CPU vs GPU throughput while sweeping the GPU thread count,
//! * `table1` — the compute/memory resource table of the four platforms,
//! * `fig4`  — operations/cycle of CPU, GPU, Pvect and Ptree on the nine
//!   benchmark circuits, plus the headline speed-up summary,
//! * `ablation` — sweeps over the design choices (tree depth, register
//!   banks, bank-allocation policy).
//!
//! The library part holds the shared plumbing: running one circuit on every
//! platform, checking that every platform computes the same root value, and
//! formatting result tables.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use serde::{Deserialize, Serialize};
use spn_compiler::Compiler;
use spn_core::flatten::OpList;
use spn_core::{Evidence, Spn};
use spn_platforms::{CpuModel, GpuConfig, GpuModel, Platform};
use spn_processor::{PerfReport, Processor, ProcessorConfig};

/// Throughput of one platform on one workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlatformResult {
    /// Platform name (`CPU`, `GPU`, `Pvect`, `Ptree`, ...).
    pub platform: String,
    /// Workload name.
    pub workload: String,
    /// SPN arithmetic operations in the workload.
    pub ops: u64,
    /// Modelled cycles for one inference pass.
    pub cycles: u64,
    /// Effective throughput in operations per cycle.
    pub ops_per_cycle: f64,
    /// Root value computed by the platform (for cross-checking).
    pub value: f64,
}

impl PlatformResult {
    fn from_report(workload: &str, value: f64, report: &PerfReport) -> Self {
        PlatformResult {
            platform: report.platform.clone(),
            workload: workload.to_string(),
            ops: report.source_ops,
            cycles: report.cycles,
            ops_per_cycle: report.ops_per_cycle(),
            value,
        }
    }
}

/// Runs the CPU baseline model.
///
/// # Errors
///
/// Returns an error when the evidence does not match the workload.
pub fn run_cpu(
    workload: &str,
    ops: &OpList,
    evidence: &Evidence,
) -> Result<PlatformResult, Box<dyn std::error::Error>> {
    let (value, report) = CpuModel::new().execute(ops, evidence)?;
    Ok(PlatformResult::from_report(workload, value, &report))
}

/// Runs the GPU baseline model with `threads` threads per block.
///
/// # Errors
///
/// Returns an error when the evidence does not match the workload.
pub fn run_gpu(
    workload: &str,
    ops: &OpList,
    evidence: &Evidence,
    threads: usize,
) -> Result<PlatformResult, Box<dyn std::error::Error>> {
    let model = GpuModel::with_config(GpuConfig {
        name: if threads == 256 {
            "GPU".to_string()
        } else {
            format!("GPU-{threads}")
        },
        ..GpuConfig::with_threads(threads)
    });
    let (value, report) = model.execute(ops, evidence)?;
    Ok(PlatformResult::from_report(workload, value, &report))
}

/// Compiles the workload for `config` and runs it on the cycle-accurate
/// processor simulator.
///
/// # Errors
///
/// Returns an error when compilation or simulation fails.
pub fn run_processor(
    workload: &str,
    ops: &OpList,
    evidence: &Evidence,
    config: &ProcessorConfig,
) -> Result<PlatformResult, Box<dyn std::error::Error>> {
    let compiler = Compiler::new(config.clone());
    let compiled = compiler.compile_op_list(ops.clone())?;
    let inputs = compiled.input_values(evidence)?;
    let processor = Processor::new(config.clone())?;
    let run = processor.run(&compiled.program, &inputs)?;
    Ok(PlatformResult::from_report(workload, run.output, &run.perf))
}

/// Runs one workload on all four platforms of Fig. 4 (CPU, GPU, Pvect,
/// Ptree) and cross-checks that every platform computes the same root value.
///
/// # Errors
///
/// Returns an error when any platform fails or disagrees on the value.
pub fn run_all_platforms(
    workload: &str,
    spn: &Spn,
    evidence: &Evidence,
) -> Result<Vec<PlatformResult>, Box<dyn std::error::Error>> {
    let ops = OpList::from_spn(spn);
    let results = vec![
        run_cpu(workload, &ops, evidence)?,
        run_gpu(workload, &ops, evidence, 256)?,
        run_processor(workload, &ops, evidence, &ProcessorConfig::pvect())?,
        run_processor(workload, &ops, evidence, &ProcessorConfig::ptree())?,
    ];
    let reference = results[0].value;
    for r in &results {
        let tolerance = 1e-9 * reference.abs().max(1e-30);
        if (r.value - reference).abs() > tolerance {
            return Err(format!(
                "platform {} disagrees on {}: {} vs {}",
                r.platform, workload, r.value, reference
            )
            .into());
        }
    }
    Ok(results)
}

/// Formats results as a GitHub-flavoured markdown table with one row per
/// workload and one column per platform (operations per cycle).
pub fn markdown_table(results: &[PlatformResult]) -> String {
    let mut workloads: Vec<String> = Vec::new();
    let mut platforms: Vec<String> = Vec::new();
    for r in results {
        if !workloads.contains(&r.workload) {
            workloads.push(r.workload.clone());
        }
        if !platforms.contains(&r.platform) {
            platforms.push(r.platform.clone());
        }
    }
    let mut out = String::new();
    out.push_str("| workload | ");
    out.push_str(&platforms.join(" | "));
    out.push_str(" |\n|---|");
    out.push_str(&"---|".repeat(platforms.len()));
    out.push('\n');
    for w in &workloads {
        out.push_str(&format!("| {w} |"));
        for p in &platforms {
            let cell = results
                .iter()
                .find(|r| &r.workload == w && &r.platform == p)
                .map(|r| format!(" {:.2} |", r.ops_per_cycle))
                .unwrap_or_else(|| " - |".to_string());
            out.push_str(&cell);
        }
        out.push('\n');
    }
    out
}

/// Serialises results to pretty JSON (consumed when updating EXPERIMENTS.md).
///
/// # Errors
///
/// Returns an error when serialisation fails (never in practice).
pub fn to_json(results: &[PlatformResult]) -> Result<String, Box<dyn std::error::Error>> {
    Ok(serde_json::to_string_pretty(results)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spn_learn::Benchmark;

    #[test]
    fn all_platforms_agree_on_a_small_benchmark() {
        let spn = Benchmark::Banknote.spn();
        let evidence = Evidence::marginal(spn.num_vars());
        let results = run_all_platforms("Banknote", &spn, &evidence).unwrap();
        assert_eq!(results.len(), 4);
        let names: Vec<&str> = results.iter().map(|r| r.platform.as_str()).collect();
        assert_eq!(names, vec!["CPU", "GPU", "Pvect", "Ptree"]);
    }

    #[test]
    fn ptree_outperforms_the_baselines_on_a_medium_benchmark() {
        let spn = Benchmark::EegEye.spn();
        let evidence = Evidence::marginal(spn.num_vars());
        let results = run_all_platforms("EEG-eye", &spn, &evidence).unwrap();
        let get = |name: &str| {
            results
                .iter()
                .find(|r| r.platform == name)
                .unwrap()
                .ops_per_cycle
        };
        assert!(get("Ptree") > get("CPU"));
        assert!(get("Ptree") > get("GPU"));
        assert!(get("Ptree") > get("Pvect"));
    }

    #[test]
    fn markdown_table_mentions_every_platform() {
        let spn = Benchmark::Banknote.spn();
        let evidence = Evidence::marginal(spn.num_vars());
        let results = run_all_platforms("Banknote", &spn, &evidence).unwrap();
        let table = markdown_table(&results);
        for p in ["CPU", "GPU", "Pvect", "Ptree", "Banknote"] {
            assert!(table.contains(p), "missing {p} in\n{table}");
        }
        assert!(to_json(&results).unwrap().contains("Ptree"));
    }
}
