//! Golden per-cycle trace cases for the multi-core simulator.
//!
//! Each [`TraceCase`] pins one small deterministic workload — an SPN, a
//! numeric mode, a core count and a dispatch mode — and renders the full
//! cycle-accurate execution trace of every core into one text artifact
//! committed under `tests/golden_traces/`.  The `record_traces` binary
//! regenerates the artifacts (`--bless`) or diffs fresh renderings against
//! the committed ones (`--check`, the CI gate), and the `golden_traces`
//! integration test does the same diff on every `cargo test`.
//!
//! Because trace lines carry exact bit patterns and global cycle numbers,
//! any change to the timing model — instruction schedules, shared-memory
//! wave arbitration, interconnect hop latency, pipeline stage starts — moves
//! at least one line, and [`spn_processor::diff_traces`] pinpoints the first
//! divergent cycle.

use std::fmt::Write as _;
use std::path::PathBuf;

use spn_compiler::Compiler;
use spn_core::batch::EvidenceBatch;
use spn_core::flatten::OpList;
use spn_core::numeric::NumericMode;
use spn_core::random::deep_chain_spn;
use spn_core::{Evidence, Spn, SpnBuilder, VarId};
use spn_platforms::BackendError;
use spn_processor::{MultiCoreConfig, MultiCoreProcessor, ProcessorConfig, TraceRecorder};

/// How a trace case distributes work over the cores.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceDispatch {
    /// Every core runs the full program on a shard of the batch.
    Sharded,
    /// The program is partitioned into pipeline stages, one per core.
    Pipelined,
}

impl TraceDispatch {
    fn label(self) -> &'static str {
        match self {
            TraceDispatch::Sharded => "sharded",
            TraceDispatch::Pipelined => "pipelined",
        }
    }
}

/// The deterministic circuit a trace case executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TraceCircuit {
    /// A 2-variable, 3-component mixture (8 ops).
    Mixture,
    /// A weighted sum/product chain of the given depth over one variable.
    Chain(usize),
    /// The diagnostic sampler kernel ([`OpList::sampler_kernel`]): uniform
    /// draws compared against CDF thresholds on the sampler comparator PE
    /// op, acceptances summed — the processor's sampling datapath in
    /// golden-trace form.
    Sampler,
}

/// The fixed `(uniform draw, CDF threshold)` pairs of the sampler trace
/// case — eight comparisons, four of which accept (`u < t` strictly; the
/// tied pair rejects), so both comparator outcomes and the
/// acceptance-count reduction appear in the trace.
const SAMPLER_DRAWS: &[(f64, f64)] = &[
    (0.125, 0.5),
    (0.875, 0.5),
    (0.0625, 0.25),
    (0.75, 0.25),
    (0.375, 0.625),
    (0.96875, 0.875),
    (0.015625, 0.03125),
    (0.5, 0.5),
];

/// One golden-trace workload.
#[derive(Debug, Clone)]
pub struct TraceCase {
    /// Artifact name (`tests/golden_traces/<name>.trace`).
    pub name: &'static str,
    /// Numeric domain the program computes in.
    pub mode: NumericMode,
    /// Number of simulated cores.
    pub cores: usize,
    /// Dispatch mode.
    pub dispatch: TraceDispatch,
    circuit: TraceCircuit,
}

impl TraceCase {
    /// The multi-core configuration the case runs on (Ptree cores behind
    /// the default shared memory and interconnect).
    pub fn config(&self) -> MultiCoreConfig {
        MultiCoreConfig::new(self.cores, ProcessorConfig::ptree())
    }

    /// The lowered program the case compiles — exactly what
    /// [`render_case`] hands to the compiler (linear or log domain per
    /// [`TraceCase::mode`]).  This is the hook `spn_lint --golden` uses to
    /// statically verify every committed golden workload.
    pub fn op_list(&self) -> OpList {
        let ops = match self.circuit {
            TraceCircuit::Mixture => OpList::from_spn(&mixture_spn()),
            TraceCircuit::Chain(levels) => OpList::from_spn(&deep_chain_spn(levels, 0.8)),
            // Sampler kernels are linear-domain by construction: the
            // comparator's 0/1 indicators have no log-domain reading.
            TraceCircuit::Sampler => return OpList::sampler_kernel(SAMPLER_DRAWS),
        };
        match self.mode {
            NumericMode::Linear => ops,
            NumericMode::Log => ops.to_log_domain(),
        }
    }

    fn batch(&self, num_vars: usize) -> EvidenceBatch {
        if num_vars == 0 {
            // Sampler kernels take no evidence: five empty rows re-run the
            // kernel, putting later queries on each core's cumulative
            // timeline exactly like the evidence-driven cases.
            let mut batch = EvidenceBatch::new(0);
            for _ in 0..5 {
                batch.push_marginal();
            }
            return batch;
        }
        // Five queries, so every shard of every tested core count holds at
        // least one query and multi-core shards hold at least two (later
        // queries sit on the core's cumulative timeline, where the
        // shared-memory contention model is visible to the differ).
        let mut batch = EvidenceBatch::new(num_vars);
        batch.push_marginal();
        batch.push_assignment(&vec![true; num_vars]).expect("vars");
        batch.push_assignment(&vec![false; num_vars]).expect("vars");
        let mut first = Evidence::marginal(num_vars);
        first.observe(0, false);
        batch.push(&first).expect("vars");
        let mut last = Evidence::marginal(num_vars);
        last.observe(num_vars - 1, true);
        batch.push(&last).expect("vars");
        batch
    }
}

fn mixture_spn() -> Spn {
    let mut b = SpnBuilder::new(2);
    let x0 = b.indicator(VarId(0), true);
    let nx0 = b.indicator(VarId(0), false);
    let x1 = b.indicator(VarId(1), true);
    let nx1 = b.indicator(VarId(1), false);
    let p0 = b.product(vec![x0, x1]).expect("product");
    let p1 = b.product(vec![nx0, nx1]).expect("product");
    let p2 = b.product(vec![x0, nx1]).expect("product");
    let root = b.sum(vec![(p0, 0.3), (p1, 0.5), (p2, 0.2)]).expect("sum");
    b.finish(root).expect("spn")
}

/// The committed golden-trace workloads: linear and log domain, one, two
/// and three cores, sharded and pipelined dispatch, plus the sampler-kernel
/// datapath.
pub fn trace_cases() -> Vec<TraceCase> {
    vec![
        TraceCase {
            name: "mixture_1core_sharded",
            mode: NumericMode::Linear,
            cores: 1,
            dispatch: TraceDispatch::Sharded,
            circuit: TraceCircuit::Mixture,
        },
        TraceCase {
            name: "mixture_2core_sharded",
            mode: NumericMode::Linear,
            cores: 2,
            dispatch: TraceDispatch::Sharded,
            circuit: TraceCircuit::Mixture,
        },
        TraceCase {
            name: "mixture_log_2core_sharded",
            mode: NumericMode::Log,
            cores: 2,
            dispatch: TraceDispatch::Sharded,
            circuit: TraceCircuit::Mixture,
        },
        TraceCase {
            name: "chain_2core_pipelined",
            mode: NumericMode::Linear,
            cores: 2,
            dispatch: TraceDispatch::Pipelined,
            circuit: TraceCircuit::Chain(6),
        },
        TraceCase {
            name: "chain_log_3core_pipelined",
            mode: NumericMode::Log,
            cores: 3,
            dispatch: TraceDispatch::Pipelined,
            circuit: TraceCircuit::Chain(6),
        },
        TraceCase {
            name: "sampler_2core_sharded",
            mode: NumericMode::Linear,
            cores: 2,
            dispatch: TraceDispatch::Sharded,
            circuit: TraceCircuit::Sampler,
        },
    ]
}

/// The directory holding the committed golden traces
/// (`<repo>/tests/golden_traces`).
pub fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
        .join("tests")
        .join("golden_traces")
}

/// Path of one case's committed golden trace.
pub fn golden_path(name: &str) -> PathBuf {
    golden_dir().join(format!("{name}.trace"))
}

/// Renders `case` on its default configuration.
///
/// # Errors
///
/// Returns an error when compilation or simulation fails.
pub fn render_case(case: &TraceCase) -> Result<String, BackendError> {
    render_case_with_config(case, &case.config())
}

/// Renders `case` on an explicit configuration (used by the perturbation
/// tests: the same case on a config with a different interconnect or
/// shared-memory model must diverge from the golden trace).
///
/// # Errors
///
/// Returns an error when compilation or simulation fails.
pub fn render_case_with_config(
    case: &TraceCase,
    config: &MultiCoreConfig,
) -> Result<String, BackendError> {
    let ops = case.op_list();
    let compiler = Compiler::new(config.core.clone());
    let processor = MultiCoreProcessor::new(config.clone())?;
    let batch = case.batch(ops.num_vars());
    let mut recorders: Vec<TraceRecorder> = (0..config.cores)
        .map(|c| TraceRecorder::new(c as u32))
        .collect();
    let mut states = Vec::new();
    let mut flat = Vec::new();

    let run = match case.dispatch {
        TraceDispatch::Sharded => {
            let compiled = compiler.compile_op_list(ops)?;
            compiled.fill_batch_inputs(&batch, &mut flat)?;
            processor.run_batch_sharded_traced(
                &compiled.program,
                &flat,
                batch.len(),
                &mut states,
                &mut recorders,
            )?
        }
        TraceDispatch::Pipelined => {
            let parted = compiler.compile_partitioned(ops, config.cores)?;
            parted.fill_batch_inputs(&batch, &mut flat)?;
            processor.run_partitioned_traced(
                &parted.parts,
                &flat,
                batch.len(),
                &mut states,
                &mut recorders,
            )?
        }
    };

    let mut out = String::new();
    let _ = writeln!(out, "# golden trace: {}", case.name);
    let _ = writeln!(
        out,
        "# cores={} dispatch={} mode={:?} queries={}",
        config.cores,
        case.dispatch.label(),
        case.mode,
        batch.len()
    );
    for (q, value) in run.outputs.iter().enumerate() {
        let _ = writeln!(out, "# output q={q} r={:016x} # {value}", value.to_bits());
    }
    for recorder in &recorders {
        let _ = writeln!(out, "== core {} ==", recorder.core());
        recorder.render_into(&mut out);
    }
    // Cycle-attribution footer: pins the makespan and every core's bulk
    // compute / memory-stall / interconnect-stall / idle split, so even
    // timing-model changes that only move shard-level accounting (not
    // individual event cycles) fail the diff.
    let _ = writeln!(out, "# makespan={}", run.cores.makespan_cycles);
    for core in &run.cores.per_core {
        let _ = writeln!(
            out,
            "# perf core={} compute={} memstall={} icstall={} idle={}",
            core.core,
            core.compute_cycles,
            core.memory_stall_cycles,
            core.interconnect_stall_cycles,
            core.idle_cycles
        );
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spn_processor::diff_traces;

    #[test]
    fn cases_are_deterministic_and_distinct() {
        for case in trace_cases() {
            let a = render_case(&case).unwrap();
            let b = render_case(&case).unwrap();
            assert_eq!(a, b, "{} must render deterministically", case.name);
            assert!(
                a.lines().any(|l| l.starts_with('C')),
                "{} records no cycles",
                case.name
            );
        }
    }

    #[test]
    fn hop_latency_perturbation_diverges_in_pipelined_traces() {
        let case = trace_cases()
            .into_iter()
            .find(|c| c.dispatch == TraceDispatch::Pipelined)
            .unwrap();
        let golden = render_case(&case).unwrap();
        let mut config = case.config();
        config.interconnect.hop_latency += 3;
        let perturbed = render_case_with_config(&case, &config).unwrap();
        let div = diff_traces(&golden, &perturbed).expect("must diverge");
        assert!(div.cycle.is_some(), "divergence should carry a cycle");
    }
}
