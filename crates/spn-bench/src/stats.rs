//! Statistical acceptance checks for the approximate-inference engine.
//!
//! Monte-Carlo estimators are random, so "the test passed" must mean "an
//! event of pre-registered, astronomically small probability did not
//! happen" — never "the answer looked close enough".  This module fixes the
//! rejection thresholds once, ahead of any data:
//!
//! * [`CHI2_P_MIN`] = 1e-12 — a chi-square goodness-of-fit test fails only
//!   when its p-value drops below one in a trillion.
//! * [`CI_Z`] = 7.0 — an estimate fails only when it sits more than seven
//!   standard errors from the exact answer (a two-sided normal tail of
//!   ~2.6e-12).
//!
//! A CI run executes well under a thousand such checks, so by the union
//! bound the probability that a *correct* sampler ever fails CI is below
//! 1e-9 — while a biased sampler or a mis-reported variance blows through
//! either threshold with high probability at the sample sizes the tests
//! draw (≥ 10⁴).  Seeded-determinism checks ([`check_deterministic`]) are
//! exact and carry no statistical budget at all.
//!
//! The special functions (log-gamma, regularized incomplete gamma) are
//! implemented here because the offline build has no scientific-computing
//! dependency; accuracy is ~1e-10 relative, which is vastly tighter than
//! any threshold above needs.

/// Pre-registered chi-square rejection threshold: fail when `p < CHI2_P_MIN`.
pub const CHI2_P_MIN: f64 = 1e-12;

/// Pre-registered z-score bound: fail when `|estimate - exact| > CI_Z * se`.
pub const CI_Z: f64 = 7.0;

/// Minimum expected count per chi-square cell; sparser cells are pooled into
/// their neighbour so the asymptotic chi-square distribution applies.
pub const MIN_EXPECTED: f64 = 5.0;

/// Natural log of the gamma function (Lanczos approximation, g = 7, n = 9).
///
/// Accurate to ~1e-13 relative for `x > 0`.
pub fn ln_gamma(x: f64) -> f64 {
    // The published Lanczos coefficients, kept digit-for-digit even where
    // they exceed f64 precision so they can be diffed against the source.
    #[allow(clippy::excessive_precision)]
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_93,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_13,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_571_6e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula keeps the small-argument range accurate.
        let pi = std::f64::consts::PI;
        return pi.ln() - (pi * x).sin().ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = COEFFS[0];
    for (i, &c) in COEFFS.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + 7.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Regularized lower incomplete gamma function `P(s, x)`.
///
/// Series expansion for `x < s + 1`, Lentz continued fraction otherwise
/// (the standard split: each converges fastest on its side).
pub fn gamma_p(s: f64, x: f64) -> f64 {
    assert!(s > 0.0 && x >= 0.0, "gamma_p needs s > 0, x >= 0");
    if x == 0.0 {
        return 0.0;
    }
    if x < s + 1.0 {
        gamma_p_series(s, x)
    } else {
        1.0 - gamma_q_cf(s, x)
    }
}

/// Regularized upper incomplete gamma function `Q(s, x)`, computed on the
/// side of the `x = s + 1` split that keeps the *tail* accurate — deep
/// tails stay positive instead of rounding through `1 - P` to zero.
pub fn gamma_q(s: f64, x: f64) -> f64 {
    assert!(s > 0.0 && x >= 0.0, "gamma_q needs s > 0, x >= 0");
    if x == 0.0 {
        return 1.0;
    }
    if x < s + 1.0 {
        1.0 - gamma_p_series(s, x)
    } else {
        gamma_q_cf(s, x)
    }
}

/// Series expansion of `P(s, x)`; converges fastest for `x < s + 1`.
/// `P(s,x) = x^s e^-x / Γ(s) · Σ_{n≥0} x^n / (s(s+1)...(s+n))`
fn gamma_p_series(s: f64, x: f64) -> f64 {
    let mut term = 1.0 / s;
    let mut sum = term;
    let mut n = 1.0;
    while term.abs() > sum.abs() * 1e-16 && n < 1e4 {
        term *= x / (s + n);
        sum += term;
        n += 1.0;
    }
    (s * x.ln() - x - ln_gamma(s)).exp() * sum
}

/// Regularized upper incomplete gamma `Q(s, x)` by modified Lentz continued
/// fraction; only valid (and only called) for `x >= s + 1`.
fn gamma_q_cf(s: f64, x: f64) -> f64 {
    let tiny = 1e-300;
    let mut b = x + 1.0 - s;
    let mut c = 1.0 / tiny;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..10_000 {
        let an = -(i as f64) * (i as f64 - s);
        b += 2.0;
        d = an * d + b;
        if d.abs() < tiny {
            d = tiny;
        }
        c = b + an / c;
        if c.abs() < tiny {
            c = tiny;
        }
        d = 1.0 / d;
        let delta = d * c;
        h *= delta;
        if (delta - 1.0).abs() < 1e-16 {
            break;
        }
    }
    (s * x.ln() - x - ln_gamma(s)).exp() * h
}

/// Chi-square survival function: `P(X >= x)` for `k` degrees of freedom.
pub fn chi2_sf(x: f64, k: usize) -> f64 {
    assert!(k > 0, "chi-square needs at least one degree of freedom");
    if x <= 0.0 {
        return 1.0;
    }
    gamma_q(k as f64 / 2.0, x / 2.0).clamp(0.0, 1.0)
}

/// Outcome of a chi-square goodness-of-fit test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GofResult {
    /// The chi-square statistic over the pooled cells.
    pub statistic: f64,
    /// Degrees of freedom (pooled cells − 1).
    pub dof: usize,
    /// Survival-function p-value.
    pub p_value: f64,
}

/// Chi-square goodness-of-fit of observed counts against expected
/// probabilities.
///
/// Cells whose expected count falls below [`MIN_EXPECTED`] are pooled (in
/// index order) so the asymptotic distribution applies; `observed` and
/// `expected_probs` must have equal lengths and `expected_probs` must sum
/// to ~1.
///
/// # Errors
///
/// Returns a description of the failure when the inputs are malformed
/// (length mismatch, non-normalised probabilities, fewer than two pooled
/// cells) or when the p-value falls below [`CHI2_P_MIN`] — the
/// pre-registered "this sampler is biased" verdict.
pub fn check_goodness_of_fit(
    observed: &[u64],
    expected_probs: &[f64],
) -> Result<GofResult, String> {
    if observed.len() != expected_probs.len() {
        return Err(format!(
            "{} observed cells vs {} expected cells",
            observed.len(),
            expected_probs.len()
        ));
    }
    let total_p: f64 = expected_probs.iter().sum();
    if (total_p - 1.0).abs() > 1e-6 {
        return Err(format!("expected probabilities sum to {total_p}, not 1"));
    }
    let n: u64 = observed.iter().sum();
    if n == 0 {
        return Err("no observations".to_string());
    }
    // Pool sparse cells left to right; a trailing sparse pool merges into
    // the last kept cell.
    let mut cells: Vec<(f64, f64)> = Vec::new(); // (observed, expected)
    let mut pool_o = 0.0;
    let mut pool_e = 0.0;
    for (&o, &p) in observed.iter().zip(expected_probs) {
        pool_o += o as f64;
        pool_e += p * n as f64;
        if pool_e >= MIN_EXPECTED {
            cells.push((pool_o, pool_e));
            pool_o = 0.0;
            pool_e = 0.0;
        }
    }
    if pool_e > 0.0 || pool_o > 0.0 {
        if let Some(last) = cells.last_mut() {
            last.0 += pool_o;
            last.1 += pool_e;
        }
    }
    if cells.len() < 2 {
        return Err(format!(
            "only {} cell(s) after pooling at {n} draws — draw more samples",
            cells.len()
        ));
    }
    let statistic: f64 = cells.iter().map(|&(o, e)| (o - e) * (o - e) / e).sum();
    let dof = cells.len() - 1;
    let p_value = chi2_sf(statistic, dof);
    if p_value < CHI2_P_MIN {
        return Err(format!(
            "chi-square GOF rejected: statistic {statistic:.3} at {dof} dof, \
             p = {p_value:.3e} < {CHI2_P_MIN:.0e}"
        ));
    }
    Ok(GofResult {
        statistic,
        dof,
        p_value,
    })
}

/// Checks that an estimate sits within [`CI_Z`] standard errors of the
/// exact answer.
///
/// A zero reported standard error asserts the estimator is exact, so the
/// estimate must then match to f64 round-off.
///
/// # Errors
///
/// Returns a description when the estimate falls outside the pre-registered
/// band — either the sampler is biased or its variance is under-reported.
pub fn check_within_ci(estimate: f64, exact: f64, std_err: f64) -> Result<(), String> {
    if !(estimate.is_finite() && exact.is_finite() && std_err.is_finite() && std_err >= 0.0) {
        return Err(format!(
            "non-finite check: estimate {estimate}, exact {exact}, se {std_err}"
        ));
    }
    let slack = CI_Z * std_err + 1e-12 * exact.abs().max(1e-300);
    if (estimate - exact).abs() > slack {
        return Err(format!(
            "estimate {estimate} is {:.2} standard errors from exact {exact} \
             (se {std_err:.3e}, bound {CI_Z})",
            (estimate - exact).abs() / std_err.max(1e-300)
        ));
    }
    Ok(())
}

/// Checks that an empirical CI hit count is consistent with its nominal
/// coverage: over `trials` independent intervals at `nominal` coverage,
/// `hits` must lie within [`CI_Z`] binomial standard deviations of
/// `nominal * trials`.
///
/// # Errors
///
/// Returns a description when the hit count falls outside the band — the
/// reported standard errors systematically mis-state the estimator spread.
pub fn check_ci_coverage(hits: u64, trials: u64, nominal: f64) -> Result<(), String> {
    if trials == 0 || !(0.0..=1.0).contains(&nominal) {
        return Err(format!("bad coverage check: {trials} trials at {nominal}"));
    }
    let n = trials as f64;
    let mean = nominal * n;
    let sd = (n * nominal * (1.0 - nominal)).sqrt();
    let lo = mean - CI_Z * sd;
    let hi = (mean + CI_Z * sd).min(n);
    let h = hits as f64;
    if h < lo || h > hi {
        return Err(format!(
            "{hits}/{trials} intervals covered the truth; expected \
             [{lo:.1}, {hi:.1}] at nominal {nominal}"
        ));
    }
    Ok(())
}

/// Checks two runs that claim to be the same seeded computation for
/// bit-for-bit equality.
///
/// # Errors
///
/// Returns the first diverging index and both values — a determinism bug,
/// never a statistical fluctuation.
pub fn check_deterministic(label: &str, a: &[f64], b: &[f64]) -> Result<(), String> {
    if a.len() != b.len() {
        return Err(format!("{label}: {} values vs {}", a.len(), b.len()));
    }
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        if x.to_bits() != y.to_bits() {
            return Err(format!("{label}: index {i} diverged: {x} vs {y}"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_matches_known_values() {
        // Γ(n) = (n-1)! and Γ(1/2) = √π.
        let mut factorial = 1.0f64;
        for n in 1..12 {
            assert!(
                (ln_gamma(n as f64) - factorial.ln()).abs() < 1e-10,
                "ln Γ({n})"
            );
            factorial *= n as f64;
        }
        let half = ln_gamma(0.5);
        assert!((half - std::f64::consts::PI.sqrt().ln()).abs() < 1e-10);
    }

    #[test]
    fn chi2_sf_matches_closed_forms() {
        // k = 2: survival is exactly exp(-x/2).
        for x in [0.1f64, 1.0, 3.0, 10.0, 40.0] {
            assert!(
                (chi2_sf(x, 2) - (-x / 2.0).exp()).abs() < 1e-10,
                "sf({x}, 2)"
            );
        }
        assert_eq!(chi2_sf(0.0, 5), 1.0);
        // Monotone decreasing in x, increasing in k.
        assert!(chi2_sf(5.0, 3) < chi2_sf(2.0, 3));
        assert!(chi2_sf(5.0, 8) > chi2_sf(5.0, 3));
        // Deep tail stays positive and tiny.
        let tail = chi2_sf(100.0, 4);
        assert!(tail > 0.0 && tail < 1e-18, "{tail}");
    }

    #[test]
    fn goodness_of_fit_accepts_fair_and_rejects_biased_counts() {
        // Counts drawn near expectation pass comfortably.
        let expected = [0.5, 0.25, 0.125, 0.125];
        let fair = [4_990u64, 2_530, 1_260, 1_220];
        let result = check_goodness_of_fit(&fair, &expected).expect("fair counts pass");
        assert!(result.p_value > 1e-6, "{result:?}");
        assert_eq!(result.dof, 3);

        // A grossly biased sampler is rejected.
        let biased = [7_000u64, 1_000, 1_000, 1_000];
        assert!(check_goodness_of_fit(&biased, &expected).is_err());

        // Malformed inputs are rejected as such.
        assert!(check_goodness_of_fit(&fair[..3], &expected).is_err());
        assert!(check_goodness_of_fit(&fair, &[0.7, 0.1, 0.1, 0.2]).is_err());
        assert!(check_goodness_of_fit(&[0, 0, 0, 0], &expected).is_err());
    }

    #[test]
    fn sparse_cells_are_pooled() {
        // 100 draws against a distribution whose tail cells expect < 5
        // counts each: the tail pools and the test still runs.
        let expected = [0.90, 0.04, 0.03, 0.03];
        let observed = [91u64, 4, 3, 2];
        let result = check_goodness_of_fit(&observed, &expected).expect("pooled tail passes");
        assert_eq!(result.dof, 1, "{result:?}");
    }

    #[test]
    fn ci_checks_accept_within_band_and_reject_outside() {
        assert!(check_within_ci(0.52, 0.50, 0.01).is_ok());
        assert!(check_within_ci(0.50, 0.50, 0.0).is_ok());
        assert!(check_within_ci(0.60, 0.50, 0.01).is_err());
        assert!(check_within_ci(0.51, 0.50, 0.0).is_err());
        assert!(check_within_ci(f64::NAN, 0.5, 0.01).is_err());

        assert!(check_ci_coverage(950, 1_000, 0.95).is_ok());
        assert!(check_ci_coverage(930, 1_000, 0.95).is_ok());
        // Perfect coverage is as inconsistent with nominal 0.95 as gross
        // under-coverage: both mean the reported spread is mis-stated.
        assert!(check_ci_coverage(1_000, 1_000, 0.95).is_err());
        assert!(check_ci_coverage(500, 1_000, 0.95).is_err());
        assert!(check_ci_coverage(0, 0, 0.95).is_err());
    }

    #[test]
    fn determinism_check_is_bitwise() {
        let a = [0.1, 0.2, -0.0];
        let b = [0.1, 0.2, 0.0];
        assert!(check_deterministic("same", &a, &a).is_ok());
        assert!(check_deterministic("signed zero", &a, &b).is_err());
        assert!(check_deterministic("length", &a, &a[..2]).is_err());
    }
}
