//! A LearnSPN-style recursive structure learner.
//!
//! The learner follows the classical LearnSPN recipe:
//!
//! 1. if the current slice has a single variable, emit a smoothed Bernoulli
//!    leaf (a sum over the two indicators);
//! 2. otherwise try to split the *variables* into groups that are (almost)
//!    mutually independent — each group becomes a child of a product node;
//! 3. if no independent split exists, cluster the *rows* into two groups —
//!    each cluster becomes a child of a sum node weighted by its share of the
//!    rows;
//! 4. when too few rows remain, fall back to a fully factorised leaf.
//!
//! The produced circuits are complete and decomposable by construction and
//! their size/shape scales with the amount of structure in the data, which is
//! what the throughput experiments of the paper depend on.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use spn_core::{NodeId, Spn, SpnBuilder, VarId};

use crate::dataset::Dataset;

/// Tuning knobs of the learner.
#[derive(Debug, Clone, PartialEq)]
pub struct LearnSpnOptions {
    /// Mutual-information threshold below which two variables are considered
    /// independent.
    pub independence_threshold: f64,
    /// Stop clustering and factorise when fewer rows than this remain.
    pub min_rows: usize,
    /// Maximum recursion depth (safety bound; the data usually stops earlier).
    pub max_depth: usize,
    /// Seed for the row-clustering initialisation.
    pub seed: u64,
}

impl Default for LearnSpnOptions {
    fn default() -> Self {
        LearnSpnOptions {
            independence_threshold: 0.02,
            min_rows: 20,
            max_depth: 64,
            seed: 7,
        }
    }
}

/// Learns an SPN from `data`.
///
/// # Panics
///
/// Panics if the dataset has no variables.
pub fn learn_spn(data: &Dataset, options: &LearnSpnOptions) -> Spn {
    assert!(
        data.num_vars() > 0,
        "dataset must have at least one variable"
    );
    let mut builder = SpnBuilder::new(data.num_vars());
    let mut rng = StdRng::seed_from_u64(options.seed);
    let vars: Vec<usize> = (0..data.num_vars()).collect();
    let rows: Vec<usize> = (0..data.num_rows()).collect();
    let root = build(&mut builder, data, &vars, &rows, options, 0, &mut rng);
    builder.finish(root).expect("root was created")
}

fn build(
    builder: &mut SpnBuilder,
    data: &Dataset,
    vars: &[usize],
    rows: &[usize],
    options: &LearnSpnOptions,
    depth: usize,
    rng: &mut StdRng,
) -> NodeId {
    if vars.len() == 1 {
        return bernoulli_leaf(builder, data, vars[0], rows);
    }
    if rows.len() < options.min_rows || depth >= options.max_depth {
        return factorized_leaf(builder, data, vars, rows);
    }

    // Try a variable split into independent groups.
    let slice = data.select_rows(rows);
    let groups = independent_groups(&slice, vars, options.independence_threshold);
    if groups.len() > 1 {
        let mut children = Vec::with_capacity(groups.len());
        for group in groups {
            children.push(build(builder, data, &group, rows, options, depth + 1, rng));
        }
        return builder.product(children).expect("groups are non-empty");
    }

    // Otherwise split the rows into two clusters.
    let (left, right) = cluster_rows(data, vars, rows, rng);
    if left.is_empty() || right.is_empty() {
        return factorized_leaf(builder, data, vars, rows);
    }
    let w_left = left.len() as f64 / rows.len() as f64;
    let left_child = build(builder, data, vars, &left, options, depth + 1, rng);
    let right_child = build(builder, data, vars, &right, options, depth + 1, rng);
    builder
        .sum(vec![(left_child, w_left), (right_child, 1.0 - w_left)])
        .expect("two children")
}

/// A smoothed Bernoulli over a single variable.
fn bernoulli_leaf(builder: &mut SpnBuilder, data: &Dataset, var: usize, rows: &[usize]) -> NodeId {
    let ones = rows.iter().filter(|&&r| data.rows()[r][var]).count();
    let p = (ones as f64 + 1.0) / (rows.len() as f64 + 2.0);
    let t = builder.indicator(VarId(var as u32), true);
    let f = builder.indicator(VarId(var as u32), false);
    builder.sum(vec![(t, p), (f, 1.0 - p)]).expect("two leaves")
}

/// A product of Bernoulli leaves (full independence assumption).
fn factorized_leaf(
    builder: &mut SpnBuilder,
    data: &Dataset,
    vars: &[usize],
    rows: &[usize],
) -> NodeId {
    let children: Vec<NodeId> = vars
        .iter()
        .map(|&v| bernoulli_leaf(builder, data, v, rows))
        .collect();
    if children.len() == 1 {
        children[0]
    } else {
        builder.product(children).expect("non-empty")
    }
}

/// Partitions `vars` into connected components of the "dependent" graph
/// (edges where mutual information exceeds the threshold).  `slice` must be
/// the dataset restricted to the rows of the current node; its columns are
/// the full variable set.
fn independent_groups(slice: &Dataset, vars: &[usize], threshold: f64) -> Vec<Vec<usize>> {
    let n = vars.len();
    let mut component: Vec<usize> = (0..n).collect();
    fn find(component: &mut Vec<usize>, i: usize) -> usize {
        if component[i] != i {
            let root = find(component, component[i]);
            component[i] = root;
        }
        component[i]
    }
    for i in 0..n {
        for j in (i + 1)..n {
            if slice.mutual_information(vars[i], vars[j]) > threshold {
                let (a, b) = (find(&mut component, i), find(&mut component, j));
                if a != b {
                    component[a] = b;
                }
            }
        }
    }
    let mut groups: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, &var) in vars.iter().enumerate().take(n) {
        let root = find(&mut component, i);
        groups[root].push(var);
    }
    groups.retain(|g| !g.is_empty());
    groups
}

/// Splits `rows` into two clusters with a single k-means-style pass seeded by
/// two random prototype rows (hamming distance on the current variable set).
fn cluster_rows(
    data: &Dataset,
    vars: &[usize],
    rows: &[usize],
    rng: &mut StdRng,
) -> (Vec<usize>, Vec<usize>) {
    let a = rows[rng.gen_range(0..rows.len())];
    let mut b = rows[rng.gen_range(0..rows.len())];
    // Try to pick distinct prototypes.
    for _ in 0..8 {
        if distance(data, vars, a, b) > 0 {
            break;
        }
        b = rows[rng.gen_range(0..rows.len())];
    }
    let mut left = Vec::new();
    let mut right = Vec::new();
    for &r in rows {
        if distance(data, vars, r, a) <= distance(data, vars, r, b) {
            left.push(r);
        } else {
            right.push(r);
        }
    }
    (left, right)
}

fn distance(data: &Dataset, vars: &[usize], r1: usize, r2: usize) -> usize {
    vars.iter()
        .filter(|&&v| data.rows()[r1][v] != data.rows()[r2][v])
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{synthetic, Structure};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use spn_core::{validate, Evidence};

    fn options() -> LearnSpnOptions {
        LearnSpnOptions::default()
    }

    #[test]
    fn learned_spn_is_valid_and_normalized() {
        let mut rng = StdRng::seed_from_u64(8);
        for structure in [
            Structure::Independent,
            Structure::Chain,
            Structure::Clustered { clusters: 3 },
        ] {
            let data = synthetic(10, 400, structure, &mut rng);
            let spn = learn_spn(&data, &options());
            assert!(validate::check(&spn).is_valid(), "{structure:?}");
            let z = spn.evaluate(&Evidence::marginal(10)).unwrap();
            assert!((z - 1.0).abs() < 1e-6, "{structure:?}: z = {z}");
        }
    }

    #[test]
    fn independent_data_yields_shallow_factorized_circuits() {
        let mut rng = StdRng::seed_from_u64(9);
        let data = synthetic(12, 600, Structure::Independent, &mut rng);
        let spn = learn_spn(&data, &options());
        let stats = spn_core::stats::SpnStats::from_spn(&spn);
        // Independence should be detected near the top: circuit stays small.
        assert!(stats.num_nodes() < 200, "{stats}");
    }

    #[test]
    fn clustered_data_yields_mixtures() {
        let mut rng = StdRng::seed_from_u64(10);
        let data = synthetic(12, 600, Structure::Clustered { clusters: 4 }, &mut rng);
        let spn = learn_spn(&data, &options());
        let (sums, _, _) = spn.reachable_counts();
        assert!(sums > 12, "expected mixture structure, got {sums} sums");
    }

    #[test]
    fn learned_model_fits_training_distribution() {
        let mut rng = StdRng::seed_from_u64(11);
        let data = synthetic(8, 800, Structure::Clustered { clusters: 2 }, &mut rng);
        let (train, test) = data.split(0.8);
        let spn = learn_spn(&train, &options());
        // Average test log-likelihood must beat a uniform model by a margin.
        let uniform = -(8.0 * std::f64::consts::LN_2);
        let ll: f64 = test
            .rows()
            .iter()
            .map(|row| {
                spn.evaluate(&Evidence::from_assignment(row))
                    .unwrap()
                    .max(1e-300)
                    .ln()
            })
            .sum::<f64>()
            / test.num_rows() as f64;
        assert!(
            ll > uniform,
            "log-likelihood {ll} not better than uniform {uniform}"
        );
    }

    #[test]
    fn circuit_size_grows_with_structure() {
        let mut rng = StdRng::seed_from_u64(12);
        let independent = synthetic(16, 500, Structure::Independent, &mut rng);
        let clustered = synthetic(16, 500, Structure::Clustered { clusters: 6 }, &mut rng);
        let small = learn_spn(&independent, &options());
        let large = learn_spn(&clustered, &options());
        assert!(large.num_nodes() > small.num_nodes());
    }
}
