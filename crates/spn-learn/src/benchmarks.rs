//! The benchmark suite of the paper's Fig. 4.
//!
//! The paper evaluates nine workloads: SPNs trained on standard binary
//! density-estimation benchmarks (Lowd & Davis 2010) and UCI datasets.  The
//! original data and the LearnPSDD tool are not available here, so each
//! benchmark is reproduced as a *named configuration*: a synthetic dataset
//! with the published variable count and a matching dependency structure,
//! run through one of our own learners.  The narrow benchmarks use the
//! LearnSPN-style learner, the wide ones (hundreds of variables) use Chow-Liu
//! tree learning compiled to a circuit, which keeps benchmark construction
//! tractable while still producing the large irregular circuits that make
//! those workloads interesting for the accelerator.
//!
//! What matters for the throughput experiments is the circuit's operation
//! count, depth and fanout distribution, not its exact parameters, so this
//! substitution preserves the experiments' shape (see DESIGN.md).

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use spn_core::random::{random_spn, RandomSpnConfig};
use spn_core::Spn;

use crate::chow_liu::ChowLiuTree;
use crate::dataset::{synthetic, Structure};
use crate::learnspn::{learn_spn, LearnSpnOptions};

/// The nine benchmarks of Fig. 4, in the paper's plotting order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum Benchmark {
    Netflix,
    Bbc,
    BioResponse,
    Audio,
    Cpu,
    Msnbc,
    EegEye,
    KddCup2k,
    Banknote,
}

impl Benchmark {
    /// All nine benchmarks in the paper's order.
    pub fn all() -> [Benchmark; 9] {
        [
            Benchmark::Netflix,
            Benchmark::Bbc,
            Benchmark::BioResponse,
            Benchmark::Audio,
            Benchmark::Cpu,
            Benchmark::Msnbc,
            Benchmark::EegEye,
            Benchmark::KddCup2k,
            Benchmark::Banknote,
        ]
    }

    /// The benchmark's display name as used in the paper's figure.
    pub fn name(self) -> &'static str {
        match self {
            Benchmark::Netflix => "Netflix",
            Benchmark::Bbc => "BBC",
            Benchmark::BioResponse => "Bio response",
            Benchmark::Audio => "Audio",
            Benchmark::Cpu => "CPU",
            Benchmark::Msnbc => "MSNBC",
            Benchmark::EegEye => "EEG-eye",
            Benchmark::KddCup2k => "KDDCup2k",
            Benchmark::Banknote => "Banknote",
        }
    }

    /// The specification used to reproduce this benchmark.
    pub fn spec(self) -> BenchmarkSpec {
        // Variable counts follow the published datasets; generator choice
        // keeps circuit construction tractable while matching the size regime.
        match self {
            Benchmark::Netflix => BenchmarkSpec::new(
                self,
                100,
                1500,
                Generator::ChowLiu,
                Structure::Clustered { clusters: 8 },
            ),
            Benchmark::Bbc => BenchmarkSpec::new(
                self,
                1058,
                400,
                Generator::ChowLiu,
                Structure::Clustered { clusters: 12 },
            ),
            Benchmark::BioResponse => {
                BenchmarkSpec::new(self, 500, 400, Generator::ChowLiu, Structure::Chain)
            }
            Benchmark::Audio => {
                BenchmarkSpec::new(self, 100, 1500, Generator::ChowLiu, Structure::Chain)
            }
            Benchmark::Cpu => BenchmarkSpec::new(
                self,
                8,
                1000,
                Generator::LearnSpn,
                Structure::Clustered { clusters: 3 },
            ),
            Benchmark::Msnbc => BenchmarkSpec::new(
                self,
                17,
                1500,
                Generator::LearnSpn,
                Structure::Clustered { clusters: 5 },
            ),
            Benchmark::EegEye => {
                BenchmarkSpec::new(self, 14, 1500, Generator::LearnSpn, Structure::Chain)
            }
            Benchmark::KddCup2k => BenchmarkSpec::new(
                self,
                64,
                1200,
                Generator::LearnSpn,
                Structure::Clustered { clusters: 6 },
            ),
            Benchmark::Banknote => BenchmarkSpec::new(
                self,
                4,
                800,
                Generator::LearnSpn,
                Structure::Clustered { clusters: 2 },
            ),
        }
    }

    /// Generates the benchmark's SPN (deterministic for a given benchmark).
    pub fn spn(self) -> Spn {
        self.spec().build()
    }
}

/// Which of our pipelines produces the benchmark circuit.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Generator {
    /// The recursive LearnSPN-style learner (small/medium variable counts).
    LearnSpn,
    /// Chow-Liu tree learning compiled to an SPN (medium variable counts).
    ChowLiu,
    /// The structured random DAG generator (very wide benchmarks).
    RandomDag {
        /// Sub-circuit reuse probability (controls DAG fanout).
        reuse: f64,
    },
}

/// Everything needed to reproduce one benchmark circuit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchmarkSpec {
    /// Which benchmark this spec describes.
    pub benchmark: Benchmark,
    /// Number of binary variables (matches the published dataset).
    pub num_vars: usize,
    /// Synthetic training rows (0 when no learner is involved).
    pub num_rows: usize,
    /// Circuit construction pipeline.
    pub generator: Generator,
    /// Dependency structure of the synthetic data.
    #[serde(skip, default = "default_structure")]
    pub structure: Structure,
}

#[allow(dead_code)] // referenced by the serde attribute above when serde is real
fn default_structure() -> Structure {
    Structure::Independent
}

impl BenchmarkSpec {
    fn new(
        benchmark: Benchmark,
        num_vars: usize,
        num_rows: usize,
        generator: Generator,
        structure: Structure,
    ) -> Self {
        BenchmarkSpec {
            benchmark,
            num_vars,
            num_rows,
            generator,
            structure,
        }
    }

    /// Deterministic seed derived from the benchmark's position.
    fn seed(&self) -> u64 {
        0x5EED_0000 + self.benchmark as u64
    }

    /// Builds the benchmark circuit.
    pub fn build(&self) -> Spn {
        let mut rng = StdRng::seed_from_u64(self.seed());
        match self.generator {
            Generator::LearnSpn => {
                let data = synthetic(self.num_vars, self.num_rows, self.structure, &mut rng);
                learn_spn(
                    &data,
                    &LearnSpnOptions {
                        seed: self.seed(),
                        ..Default::default()
                    },
                )
            }
            Generator::ChowLiu => {
                let data = synthetic(self.num_vars, self.num_rows, self.structure, &mut rng);
                ChowLiuTree::learn(&data).to_spn()
            }
            Generator::RandomDag { reuse } => random_spn(
                &RandomSpnConfig {
                    num_vars: self.num_vars,
                    reuse_probability: reuse,
                    ..Default::default()
                },
                &mut rng,
            ),
        }
    }
}

// `Structure` lives in `dataset`; it intentionally does not implement serde,
// so the spec skips it during (de)serialisation and restores the default.

#[cfg(test)]
mod tests {
    use super::*;
    use spn_core::stats::SpnStats;
    use spn_core::{validate, Evidence};

    #[test]
    fn all_benchmarks_are_listed_in_paper_order() {
        let names: Vec<&str> = Benchmark::all().iter().map(|b| b.name()).collect();
        assert_eq!(names[0], "Netflix");
        assert_eq!(names.len(), 9);
        assert!(names.contains(&"KDDCup2k"));
    }

    #[test]
    fn specs_match_published_variable_counts() {
        assert_eq!(Benchmark::Netflix.spec().num_vars, 100);
        assert_eq!(Benchmark::Msnbc.spec().num_vars, 17);
        assert_eq!(Benchmark::Banknote.spec().num_vars, 4);
        assert_eq!(Benchmark::Bbc.spec().num_vars, 1058);
    }

    #[test]
    fn small_benchmarks_build_valid_circuits() {
        for b in [Benchmark::Banknote, Benchmark::Cpu, Benchmark::EegEye] {
            let spn = b.spn();
            assert!(validate::check(&spn).is_valid(), "{}", b.name());
            let z = spn.evaluate(&Evidence::marginal(spn.num_vars())).unwrap();
            assert!((z - 1.0).abs() < 1e-6, "{}: z = {z}", b.name());
            assert_eq!(spn.num_vars(), b.spec().num_vars);
        }
    }

    #[test]
    fn benchmark_generation_is_deterministic() {
        let a = Benchmark::Banknote.spn();
        let b = Benchmark::Banknote.spn();
        assert_eq!(a, b);
    }

    #[test]
    fn wide_benchmarks_are_substantially_larger_than_narrow_ones() {
        let wide = SpnStats::from_spn(&Benchmark::BioResponse.spn());
        let narrow = SpnStats::from_spn(&Benchmark::Banknote.spn());
        assert!(wide.num_ops > narrow.num_ops * 10);
    }
}
