//! Datasets, structure learning and the benchmark suite.
//!
//! The paper evaluates its processor on SPNs learned (with LearnPSDD) from a
//! suite of standard binary benchmarks (UCI datasets and the density
//! estimation benchmarks of Lowd & Davis).  The original datasets and the
//! LearnPSDD toolchain are not redistributable here, so this crate rebuilds
//! the pipeline from scratch:
//!
//! * [`dataset`] — binary datasets and synthetic generators whose dimensions
//!   match the published benchmarks,
//! * [`chow_liu`] — Chow-Liu tree learning and its compilation to an SPN,
//! * [`learnspn`] — a LearnSPN-style recursive structure learner (instance
//!   clustering for sums, variable-independence partitioning for products),
//! * [`benchmarks`] — named configurations for the nine workloads of Fig. 4,
//!   producing circuits of the same variable counts and comparable sizes.
//!
//! The throughput experiments only depend on the circuit's size and topology
//! statistics, which this pipeline reproduces; the learned parameters are of
//! course not identical to the paper's.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod benchmarks;
pub mod chow_liu;
pub mod dataset;
pub mod learnspn;

pub use benchmarks::{Benchmark, BenchmarkSpec};
pub use dataset::Dataset;
