//! Chow-Liu tree learning and its compilation to an SPN.
//!
//! A Chow-Liu tree is the maximum-likelihood tree-shaped Bayesian network: it
//! is the maximum spanning tree of the pairwise mutual-information graph.
//! Tree-shaped models compile to compact SPNs, which makes them both a useful
//! leaf distribution for LearnSPN-style learners and a simple end-to-end
//! example of the "model → circuit → processor" flow of the paper.

use spn_core::{NodeId, Spn, SpnBuilder, VarId};

use crate::dataset::Dataset;

/// A tree-shaped Bayesian network over binary variables.
#[derive(Debug, Clone, PartialEq)]
pub struct ChowLiuTree {
    /// Number of variables.
    pub num_vars: usize,
    /// The root variable.
    pub root: usize,
    /// `parent[v]` is the parent variable of `v` (`None` for the root).
    pub parent: Vec<Option<usize>>,
    /// `P(v = true | parent value)`, indexed `[v][parent_value as usize]`;
    /// for the root both entries hold the marginal.
    pub cpt: Vec<[f64; 2]>,
}

impl ChowLiuTree {
    /// Learns a Chow-Liu tree from `data` (rooted at variable 0).
    ///
    /// # Panics
    ///
    /// Panics if `data` has no variables.
    pub fn learn(data: &Dataset) -> ChowLiuTree {
        let n = data.num_vars();
        assert!(n > 0, "cannot learn a tree over zero variables");

        // Maximum spanning tree over mutual information (Prim's algorithm).
        let mut in_tree = vec![false; n];
        let mut parent: Vec<Option<usize>> = vec![None; n];
        let mut best_gain = vec![f64::NEG_INFINITY; n];
        let mut best_link = vec![0usize; n];
        in_tree[0] = true;
        for v in 1..n {
            best_gain[v] = data.mutual_information(0, v);
            best_link[v] = 0;
        }
        for _ in 1..n {
            let next = (0..n)
                .filter(|&v| !in_tree[v])
                .max_by(|&a, &b| best_gain[a].partial_cmp(&best_gain[b]).unwrap())
                .expect("some variable remains");
            in_tree[next] = true;
            parent[next] = Some(best_link[next]);
            for v in 0..n {
                if !in_tree[v] {
                    let gain = data.mutual_information(next, v);
                    if gain > best_gain[v] {
                        best_gain[v] = gain;
                        best_link[v] = next;
                    }
                }
            }
        }

        // Conditional probability tables with Laplace smoothing.
        let mut cpt = vec![[0.5, 0.5]; n];
        for v in 0..n {
            match parent[v] {
                None => {
                    let p = data.marginal(v);
                    cpt[v] = [p, p];
                }
                Some(u) => {
                    for (pv, slot) in [(false, 0usize), (true, 1usize)] {
                        let joint_true = data.joint(v, true, u, pv);
                        let joint_false = data.joint(v, false, u, pv);
                        cpt[v][slot] = joint_true / (joint_true + joint_false);
                    }
                }
            }
        }
        ChowLiuTree {
            num_vars: n,
            root: 0,
            parent,
            cpt,
        }
    }

    /// Log-likelihood of a fully observed row under the tree.
    pub fn log_likelihood_row(&self, row: &[bool]) -> f64 {
        let mut ll = 0.0;
        for v in 0..self.num_vars {
            let p_true = match self.parent[v] {
                None => self.cpt[v][0],
                Some(u) => self.cpt[v][usize::from(row[u])],
            };
            let p = if row[v] { p_true } else { 1.0 - p_true };
            ll += p.ln();
        }
        ll
    }

    /// Average log-likelihood over a dataset.
    pub fn log_likelihood(&self, data: &Dataset) -> f64 {
        if data.is_empty() {
            return 0.0;
        }
        data.rows()
            .iter()
            .map(|r| self.log_likelihood_row(r))
            .sum::<f64>()
            / data.num_rows() as f64
    }

    /// Compiles the tree into an SPN over the same variables.
    ///
    /// The construction follows the classical BN-to-AC compilation for trees:
    /// for every variable we build, per parent value, a sum over its two
    /// indicator leaves weighted by the CPT, multiplied with the sub-circuits
    /// of its children conditioned on that value.
    pub fn to_spn(&self) -> Spn {
        // children[v] = variables whose parent is v.
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); self.num_vars];
        for v in 0..self.num_vars {
            if let Some(u) = self.parent[v] {
                children[u].push(v);
            }
        }
        let mut builder = SpnBuilder::new(self.num_vars);
        // Build bottom-up in reverse topological order (children before
        // parents); circuit[v][pv] is the sub-circuit for the subtree rooted
        // at v given that v's parent takes value pv.
        let order = self.topological_order(&children);
        let mut circuit: Vec<[Option<NodeId>; 2]> = vec![[None, None]; self.num_vars];
        for &v in order.iter().rev() {
            let ind_true = builder.indicator(VarId(v as u32), true);
            let ind_false = builder.indicator(VarId(v as u32), false);
            // The root has no parent, so only its pv = 0 slot is ever read;
            // building the pv = 1 twin would leave unreachable nodes in the
            // circuit (flagged as SPN004 by `spn_core::analysis::lint_spn`).
            let parent_values = if v == self.root { 1 } else { 2 };
            for pv in 0..parent_values {
                let p_true = self.cpt[v][pv];
                // Branch for v = true / false, each multiplied with the
                // children conditioned on that value of v.
                let mut branches = Vec::with_capacity(2);
                for (value, indicator, weight) in
                    [(true, ind_true, p_true), (false, ind_false, 1.0 - p_true)]
                {
                    let mut factors = vec![indicator];
                    for &c in &children[v] {
                        factors.push(circuit[c][usize::from(value)].expect("child built first"));
                    }
                    let product = if factors.len() == 1 {
                        factors[0]
                    } else {
                        builder.product(factors).expect("non-empty product")
                    };
                    branches.push((product, weight));
                }
                let sum = builder.sum(branches).expect("two branches");
                circuit[v][pv] = Some(sum);
            }
        }
        let root = circuit[self.root][0].expect("root built");
        builder.finish(root).expect("root exists")
    }

    fn topological_order(&self, children: &[Vec<usize>]) -> Vec<usize> {
        let mut order = Vec::with_capacity(self.num_vars);
        let mut stack = vec![self.root];
        while let Some(v) = stack.pop() {
            order.push(v);
            stack.extend(children[v].iter().copied());
        }
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{synthetic, Structure};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use spn_core::{validate, Evidence};

    #[test]
    fn learns_chain_structure_from_chain_data() {
        let mut rng = StdRng::seed_from_u64(4);
        let data = synthetic(6, 1500, Structure::Chain, &mut rng);
        let tree = ChowLiuTree::learn(&data);
        // In chain data each non-root variable's parent should be a neighbour.
        for v in 1..6 {
            let parent = tree.parent[v].unwrap();
            assert!(
                parent + 1 == v || v + 1 == parent || parent == v - 1,
                "variable {v} got parent {parent}"
            );
        }
    }

    #[test]
    fn compiled_spn_is_valid_and_normalized() {
        let mut rng = StdRng::seed_from_u64(5);
        let data = synthetic(7, 500, Structure::Clustered { clusters: 2 }, &mut rng);
        let tree = ChowLiuTree::learn(&data);
        let spn = tree.to_spn();
        assert!(validate::check(&spn).is_valid());
        let z = spn.evaluate(&Evidence::marginal(7)).unwrap();
        assert!((z - 1.0).abs() < 1e-9);
    }

    #[test]
    fn spn_matches_tree_likelihood() {
        let mut rng = StdRng::seed_from_u64(6);
        let data = synthetic(5, 400, Structure::Chain, &mut rng);
        let tree = ChowLiuTree::learn(&data);
        let spn = tree.to_spn();
        for row in data.rows().iter().take(20) {
            let p_spn = spn.evaluate(&Evidence::from_assignment(row)).unwrap();
            let ll_tree = tree.log_likelihood_row(row);
            assert!((p_spn.ln() - ll_tree).abs() < 1e-9);
        }
    }

    #[test]
    fn tree_model_beats_independence_on_correlated_data() {
        let mut rng = StdRng::seed_from_u64(7);
        let data = synthetic(8, 1000, Structure::Chain, &mut rng);
        let (train, test) = data.split(0.8);
        let tree = ChowLiuTree::learn(&train);
        // Independence baseline: same learner on shuffled-column data is not
        // available, so compare against the product of marginals directly.
        let independent_ll: f64 = test
            .rows()
            .iter()
            .map(|row| {
                row.iter()
                    .enumerate()
                    .map(|(v, &b)| {
                        let p = train.marginal(v);
                        if b {
                            p.ln()
                        } else {
                            (1.0 - p).ln()
                        }
                    })
                    .sum::<f64>()
            })
            .sum::<f64>()
            / test.num_rows() as f64;
        assert!(tree.log_likelihood(&test) > independent_ll);
    }

    #[test]
    fn single_variable_tree() {
        let data = Dataset::new(1, vec![vec![true], vec![false], vec![true]]);
        let tree = ChowLiuTree::learn(&data);
        let spn = tree.to_spn();
        assert!(validate::check(&spn).is_valid());
        assert_eq!(tree.parent[0], None);
    }
}
