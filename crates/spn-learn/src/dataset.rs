//! Binary datasets and synthetic data generators.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// A dataset of fully observed binary rows.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Dataset {
    num_vars: usize,
    rows: Vec<Vec<bool>>,
}

impl Dataset {
    /// Creates a dataset from explicit rows.
    ///
    /// # Panics
    ///
    /// Panics if any row has a different length than `num_vars`.
    pub fn new(num_vars: usize, rows: Vec<Vec<bool>>) -> Self {
        assert!(
            rows.iter().all(|r| r.len() == num_vars),
            "all rows must have {num_vars} variables"
        );
        Dataset { num_vars, rows }
    }

    /// Number of variables (columns).
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` when the dataset has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Access to the raw rows.
    pub fn rows(&self) -> &[Vec<bool>] {
        &self.rows
    }

    /// The empirical probability of variable `var` being `true`, with
    /// add-one (Laplace) smoothing.
    pub fn marginal(&self, var: usize) -> f64 {
        let ones = self.rows.iter().filter(|r| r[var]).count();
        (ones as f64 + 1.0) / (self.num_rows() as f64 + 2.0)
    }

    /// The smoothed empirical joint probability `P(var_a = a, var_b = b)`.
    pub fn joint(&self, var_a: usize, a: bool, var_b: usize, b: bool) -> f64 {
        let count = self
            .rows
            .iter()
            .filter(|r| r[var_a] == a && r[var_b] == b)
            .count();
        (count as f64 + 1.0) / (self.num_rows() as f64 + 4.0)
    }

    /// Pairwise mutual information between two variables (in nats), computed
    /// from smoothed counts.
    pub fn mutual_information(&self, var_a: usize, var_b: usize) -> f64 {
        if var_a == var_b {
            return f64::INFINITY;
        }
        let mut mi = 0.0;
        for a in [false, true] {
            for b in [false, true] {
                let p_ab = self.joint(var_a, a, var_b, b);
                let p_a = if a {
                    self.marginal(var_a)
                } else {
                    1.0 - self.marginal(var_a)
                };
                let p_b = if b {
                    self.marginal(var_b)
                } else {
                    1.0 - self.marginal(var_b)
                };
                if p_ab > 0.0 {
                    mi += p_ab * (p_ab / (p_a * p_b)).ln();
                }
            }
        }
        mi.max(0.0)
    }

    /// Splits the dataset into a training and a test part (`train_fraction`
    /// of the rows go to the training set, preserving row order).
    pub fn split(&self, train_fraction: f64) -> (Dataset, Dataset) {
        let cut = ((self.num_rows() as f64) * train_fraction).round() as usize;
        let cut = cut.min(self.num_rows());
        (
            Dataset::new(self.num_vars, self.rows[..cut].to_vec()),
            Dataset::new(self.num_vars, self.rows[cut..].to_vec()),
        )
    }

    /// Restricts the dataset to a subset of rows (by index).
    pub fn select_rows(&self, indices: &[usize]) -> Dataset {
        Dataset::new(
            self.num_vars,
            indices.iter().map(|&i| self.rows[i].clone()).collect(),
        )
    }

    /// Projects the dataset onto a subset of variables; the result's columns
    /// follow the order of `vars`.
    pub fn project(&self, vars: &[usize]) -> Dataset {
        Dataset::new(
            vars.len(),
            self.rows
                .iter()
                .map(|r| vars.iter().map(|&v| r[v]).collect())
                .collect(),
        )
    }
}

/// Shape of the dependency structure used by [`synthetic`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Structure {
    /// All variables independent.
    Independent,
    /// A first-order chain: each variable depends on the previous one.
    Chain,
    /// A mixture of `k` prototype rows with bit-flip noise (clustered data).
    Clustered {
        /// Number of mixture components.
        clusters: usize,
    },
}

/// Generates a synthetic binary dataset over `num_vars` variables.
///
/// The three structures cover the regimes found in the real benchmarks:
/// independent noise, chain-correlated signals (sensor-like data such as
/// EEG-eye), and cluster-structured data (recommendation data such as
/// Netflix or text data such as BBC).
pub fn synthetic<R: Rng + ?Sized>(
    num_vars: usize,
    num_rows: usize,
    structure: Structure,
    rng: &mut R,
) -> Dataset {
    let mut rows = Vec::with_capacity(num_rows);
    match structure {
        Structure::Independent => {
            let probs: Vec<f64> = (0..num_vars).map(|_| rng.gen_range(0.1..0.9)).collect();
            for _ in 0..num_rows {
                rows.push(probs.iter().map(|&p| rng.gen_bool(p)).collect());
            }
        }
        Structure::Chain => {
            let stay = 0.85;
            for _ in 0..num_rows {
                let mut row = Vec::with_capacity(num_vars);
                let mut prev = rng.gen_bool(0.5);
                for _ in 0..num_vars {
                    let value = if rng.gen_bool(stay) { prev } else { !prev };
                    row.push(value);
                    prev = value;
                }
                rows.push(row);
            }
        }
        Structure::Clustered { clusters } => {
            let clusters = clusters.max(1);
            let prototypes: Vec<Vec<bool>> = (0..clusters)
                .map(|_| (0..num_vars).map(|_| rng.gen_bool(0.5)).collect())
                .collect();
            for _ in 0..num_rows {
                let proto = &prototypes[rng.gen_range(0..clusters)];
                rows.push(
                    proto
                        .iter()
                        .map(|&b| if rng.gen_bool(0.1) { !b } else { b })
                        .collect(),
                );
            }
        }
    }
    Dataset::new(num_vars, rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn construction_and_accessors() {
        let d = Dataset::new(2, vec![vec![true, false], vec![true, true]]);
        assert_eq!(d.num_vars(), 2);
        assert_eq!(d.num_rows(), 2);
        assert!(!d.is_empty());
        assert!(d.marginal(0) > 0.7);
    }

    #[test]
    #[should_panic(expected = "variables")]
    fn mismatched_rows_panic() {
        let _ = Dataset::new(3, vec![vec![true, false]]);
    }

    #[test]
    fn mutual_information_detects_dependence() {
        let mut rng = StdRng::seed_from_u64(1);
        let chain = synthetic(6, 800, Structure::Chain, &mut rng);
        let indep = synthetic(6, 800, Structure::Independent, &mut rng);
        // Adjacent chain variables share much more information than
        // independent ones.
        assert!(chain.mutual_information(0, 1) > indep.mutual_information(0, 1) + 0.05);
        assert!(chain.mutual_information(2, 2).is_infinite());
    }

    #[test]
    fn split_and_project_preserve_shapes() {
        let mut rng = StdRng::seed_from_u64(2);
        let d = synthetic(5, 100, Structure::Independent, &mut rng);
        let (train, test) = d.split(0.8);
        assert_eq!(train.num_rows(), 80);
        assert_eq!(test.num_rows(), 20);
        let p = d.project(&[0, 3]);
        assert_eq!(p.num_vars(), 2);
        assert_eq!(p.num_rows(), 100);
        let s = d.select_rows(&[0, 1, 2]);
        assert_eq!(s.num_rows(), 3);
    }

    #[test]
    fn clustered_data_has_cluster_structure() {
        let mut rng = StdRng::seed_from_u64(3);
        let d = synthetic(12, 400, Structure::Clustered { clusters: 3 }, &mut rng);
        assert_eq!(d.num_rows(), 400);
        // Clustered data induces correlations between most variable pairs.
        let mi: f64 = (1..6).map(|v| d.mutual_information(0, v)).sum();
        assert!(mi > 0.05);
    }

    #[test]
    fn probabilities_are_smoothed_and_bounded() {
        let d = Dataset::new(1, vec![vec![true]; 10]);
        let p = d.marginal(0);
        assert!(p < 1.0 && p > 0.9);
        assert!(d.joint(0, true, 0, true) <= 1.0);
    }
}
