//! Validity tests of the structure learners: Chow-Liu and LearnSPN must
//! produce structurally valid, normalised SPNs whose joint distribution sums
//! to one on small datasets.

use rand::rngs::StdRng;
use rand::SeedableRng;

use spn_core::query::reference_query;
use spn_core::{validate, Evidence, EvidenceBatch, QueryBatch, Spn};
use spn_learn::chow_liu::ChowLiuTree;
use spn_learn::dataset::{synthetic, Structure};
use spn_learn::learnspn::{learn_spn, LearnSpnOptions};
use spn_learn::Dataset;

/// Sums the learned joint over all `2^num_vars` assignments via the
/// reference query path — must be 1 for a normalised SPN.
fn joint_mass(spn: &Spn) -> f64 {
    let num_vars = spn.num_vars();
    assert!(
        num_vars <= 12,
        "enumeration only feasible for small circuits"
    );
    let mut batch = EvidenceBatch::with_capacity(num_vars, 1 << num_vars);
    for bits in 0..(1u32 << num_vars) {
        let assignment: Vec<bool> = (0..num_vars).map(|v| bits >> v & 1 == 1).collect();
        batch.push_assignment(&assignment).unwrap();
    }
    let result = reference_query(spn, &QueryBatch::Joint(batch)).unwrap();
    assert!(result
        .values
        .iter()
        .all(|&v| (0.0..=1.0 + 1e-12).contains(&v)));
    result.values.iter().sum()
}

fn check_learned_spn(spn: &Spn, num_vars: usize, context: &str) {
    assert_eq!(spn.num_vars(), num_vars, "{context}: variable count");
    let report = validate::check(spn);
    assert!(report.is_valid(), "{context}: invalid SPN: {report:?}");

    // Normalisation, three ways: full marginal pass, joint enumeration, and
    // consistency between a marginal and the sum of its completions.
    let z = spn.evaluate(&Evidence::marginal(num_vars)).unwrap();
    assert!((z - 1.0).abs() < 1e-9, "{context}: partition function {z}");
    let mass = joint_mass(spn);
    assert!((mass - 1.0).abs() < 1e-9, "{context}: joint mass {mass}");

    let mut observed = Evidence::marginal(num_vars);
    observed.observe(0, true);
    let marginal = spn.evaluate(&observed).unwrap();
    let mut complement = Evidence::marginal(num_vars);
    complement.observe(0, false);
    let other = spn.evaluate(&complement).unwrap();
    assert!(
        (marginal + other - 1.0).abs() < 1e-9,
        "{context}: P(X0=1) + P(X0=0) = {}",
        marginal + other
    );
}

fn datasets(num_vars: usize) -> Vec<(&'static str, Dataset)> {
    let mut rng = StdRng::seed_from_u64(2024);
    vec![
        (
            "independent",
            synthetic(num_vars, 400, Structure::Independent, &mut rng),
        ),
        (
            "chain",
            synthetic(num_vars, 400, Structure::Chain, &mut rng),
        ),
        (
            "clustered",
            synthetic(
                num_vars,
                400,
                Structure::Clustered { clusters: 3 },
                &mut rng,
            ),
        ),
    ]
}

#[test]
fn chow_liu_learns_valid_normalised_spns() {
    for num_vars in [2usize, 5, 8] {
        for (name, data) in datasets(num_vars) {
            let tree = ChowLiuTree::learn(&data);
            let spn = tree.to_spn();
            check_learned_spn(&spn, num_vars, &format!("chow-liu/{name}/{num_vars}v"));

            // The tree's own likelihood agrees with the compiled circuit's.
            let row = data.rows()[0].clone();
            let from_tree = tree.log_likelihood_row(&row);
            let from_spn = spn.evaluate(&Evidence::from_assignment(&row)).unwrap().ln();
            assert!(
                (from_tree - from_spn).abs() < 1e-9,
                "chow-liu/{name}/{num_vars}v: tree ll {from_tree} vs spn ll {from_spn}"
            );
        }
    }
}

#[test]
fn chow_liu_likelihood_is_finite_and_negative_on_training_data() {
    let mut rng = StdRng::seed_from_u64(5);
    let data = synthetic(6, 300, Structure::Chain, &mut rng);
    let tree = ChowLiuTree::learn(&data);
    let ll = tree.log_likelihood(&data);
    assert!(ll.is_finite());
    assert!(
        ll < 0.0,
        "log-likelihood of 300 binary rows must be negative"
    );
}

#[test]
fn learnspn_learns_valid_normalised_spns() {
    for num_vars in [3usize, 6, 9] {
        for (name, data) in datasets(num_vars) {
            let spn = learn_spn(&data, &LearnSpnOptions::default());
            check_learned_spn(&spn, num_vars, &format!("learnspn/{name}/{num_vars}v"));
        }
    }
}

#[test]
fn learnspn_assigns_high_mass_to_cluster_prototypes() {
    // On strongly clustered data, rows from the dataset should be far more
    // probable than uniform (1 / 2^n) on average.
    let mut rng = StdRng::seed_from_u64(77);
    let num_vars = 8;
    let data = synthetic(
        num_vars,
        500,
        Structure::Clustered { clusters: 2 },
        &mut rng,
    );
    let spn = learn_spn(&data, &LearnSpnOptions::default());
    let mean_ll: f64 = data
        .rows()
        .iter()
        .take(100)
        .map(|row| {
            spn.evaluate(&Evidence::from_assignment(row))
                .unwrap()
                .max(1e-300)
                .ln()
        })
        .sum::<f64>()
        / 100.0;
    let uniform_ll = -(num_vars as f64) * std::f64::consts::LN_2;
    assert!(
        mean_ll > uniform_ll,
        "mean log-likelihood {mean_ll} not above uniform {uniform_ll}"
    );
}

#[test]
fn learned_spns_flatten_and_serve_queries() {
    // The learners feed the serving/benchmark stack: their output must
    // survive flattening and answer marginal queries consistently.
    let mut rng = StdRng::seed_from_u64(11);
    let data = synthetic(5, 300, Structure::Chain, &mut rng);
    let mut evaluator = spn_core::FlatEvaluator::new();
    for spn in [
        ChowLiuTree::learn(&data).to_spn(),
        learn_spn(&data, &LearnSpnOptions::default()),
    ] {
        let ops = spn_core::flatten::OpList::from_spn(&spn);
        let mut evidence = Evidence::marginal(5);
        evidence.observe(2, true);
        let flat = evaluator.evaluate(&ops, &evidence).unwrap();
        let reference = spn.evaluate(&evidence).unwrap();
        assert!(
            (flat - reference).abs() < 1e-9 * reference.abs().max(1e-12),
            "flattened {flat} vs graph {reference}"
        );
    }
}
