//! Processor configuration: datapath geometry and storage sizes.
//!
//! The two configurations evaluated in the paper differ only in the PE
//! arrangement; crossbar, register file and data memory are identical
//! (Table I):
//!
//! | configuration | PEs | arrangement |
//! |---|---|---|
//! | `Ptree` | 30 | 2 trees × 4 levels (8+4+2+1 per tree) |
//! | `Pvect` | 16 | lowest PE level only (2 × 8) |

use serde::{Deserialize, Serialize};

use crate::error::ProcessorError;
use crate::interconnect::{InterconnectConfig, SharedMemoryConfig};
use crate::Result;

/// Position of a processing element inside the datapath.
///
/// Levels are counted from the tree inputs: level `0` PEs read the crossbar,
/// level `levels-1` is the root of the tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PePosition {
    /// Index of the PE tree.
    pub tree: usize,
    /// Pipeline level within the tree (0 = leaf level fed by the crossbar).
    pub level: usize,
    /// Index of the PE within its level.
    pub index: usize,
}

/// Geometry and storage sizes of the SPN processor.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProcessorConfig {
    /// Human-readable name of the configuration (used in reports).
    pub name: String,
    /// Number of PE trees.
    pub num_trees: usize,
    /// Number of PE levels per tree (1 = a plain vector of PEs).
    pub tree_levels: usize,
    /// Number of leaf-level PEs per tree (the tree is a complete binary tree
    /// above them, so this must be a power of two).
    pub leaf_pes_per_tree: usize,
    /// Register banks in each tree's private register file.
    pub banks_per_tree: usize,
    /// Registers per bank.
    pub regs_per_bank: usize,
    /// Data memory capacity in rows (one row = one word per bank).
    pub data_memory_rows: usize,
}

impl ProcessorConfig {
    /// The `Ptree` configuration of the paper: 2 trees with 4 PE levels
    /// (30 PEs), 32 register banks × 64 registers, 64 KB data memory.
    pub fn ptree() -> Self {
        ProcessorConfig {
            name: "Ptree".to_string(),
            num_trees: 2,
            tree_levels: 4,
            leaf_pes_per_tree: 8,
            banks_per_tree: 16,
            regs_per_bank: 64,
            // 64 KB of 32-bit words = 16384 words = 512 rows of 32 words.
            data_memory_rows: 512,
        }
    }

    /// The `Pvect` configuration of the paper: only the lowest PE level is
    /// kept (16 PEs); everything else matches [`ProcessorConfig::ptree`].
    pub fn pvect() -> Self {
        ProcessorConfig {
            name: "Pvect".to_string(),
            tree_levels: 1,
            ..ProcessorConfig::ptree()
        }
    }

    /// Validates internal consistency of the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ProcessorError::InvalidConfig`] describing the first
    /// inconsistency found.
    pub fn validate(&self) -> Result<()> {
        let fail = |reason: &str| {
            Err(ProcessorError::InvalidConfig {
                reason: reason.to_string(),
            })
        };
        if self.num_trees == 0 {
            return fail("at least one PE tree is required");
        }
        if self.tree_levels == 0 {
            return fail("at least one PE level is required");
        }
        if self.leaf_pes_per_tree == 0 {
            return fail("at least one leaf PE per tree is required");
        }
        if !self.leaf_pes_per_tree.is_power_of_two() {
            return fail("leaf PEs per tree must be a power of two");
        }
        if self.tree_levels > self.leaf_pes_per_tree.trailing_zeros() as usize + 1 {
            return fail("tree has more levels than a complete binary tree allows");
        }
        if self.banks_per_tree == 0 || self.regs_per_bank == 0 {
            return fail("register file must have at least one bank and one register");
        }
        if !self.banks_per_tree.is_power_of_two() {
            return fail("banks per tree must be a power of two");
        }
        if self.data_memory_rows == 0 {
            return fail("data memory must have at least one row");
        }
        if self.total_banks() < self.tree_inputs_per_tree() {
            return fail("crossbar narrower than one tree's inputs");
        }
        Ok(())
    }

    /// Number of PEs at `level` of one tree.
    pub fn pes_at_level(&self, level: usize) -> usize {
        self.leaf_pes_per_tree >> level
    }

    /// Total number of PEs in the datapath.
    pub fn num_pes(&self) -> usize {
        (0..self.tree_levels)
            .map(|l| self.pes_at_level(l))
            .sum::<usize>()
            * self.num_trees
    }

    /// Number of crossbar-fed inputs of one tree (leaf PEs × 2).
    pub fn tree_inputs_per_tree(&self) -> usize {
        self.leaf_pes_per_tree * 2
    }

    /// Total register banks across all trees.
    pub fn total_banks(&self) -> usize {
        self.banks_per_tree * self.num_trees
    }

    /// Total registers in the machine.
    pub fn total_registers(&self) -> usize {
        self.total_banks() * self.regs_per_bank
    }

    /// Data-memory capacity in words.
    pub fn data_memory_words(&self) -> usize {
        self.data_memory_rows * self.total_banks()
    }

    /// Global bank index range `[start, end)` of the private register file of
    /// `tree`.
    pub fn tree_bank_range(&self, tree: usize) -> std::ops::Range<usize> {
        let start = tree * self.banks_per_tree;
        start..start + self.banks_per_tree
    }

    /// Global bank indices a PE may write to.
    ///
    /// A PE at level `l`, index `i` of tree `t` reaches `2^(l+1)` consecutive
    /// banks of its tree's private register file, aligned to its position:
    /// leaf PEs reach 2 banks, the next level 4, and so on (fig. 3 of the
    /// paper).  When the tree has fewer banks than `2^(l+1)`, the whole
    /// private file is reachable.
    pub fn writable_banks(&self, pe: PePosition) -> std::ops::Range<usize> {
        let span = (2usize << pe.level).min(self.banks_per_tree);
        let base =
            pe.tree * self.banks_per_tree + (pe.index * span).min(self.banks_per_tree - span);
        base..base + span
    }

    /// Returns `true` when `pe` may write to global bank `bank`.
    pub fn can_write(&self, pe: PePosition, bank: usize) -> bool {
        self.writable_banks(pe).contains(&bank)
    }

    /// Pipeline latency, in cycles, from instruction issue to the commit of a
    /// write produced at `level` (each level adds one register stage).
    pub fn commit_latency(&self, level: usize) -> u64 {
        level as u64
    }

    /// Immediate-storage summary used for Table I style reports:
    /// `(registers, register bits, data memory bytes)` assuming 32-bit words.
    pub fn storage_summary(&self) -> (usize, usize, usize) {
        let regs = self.total_registers();
        (regs, regs * 32, self.data_memory_words() * 4)
    }
}

impl Default for ProcessorConfig {
    fn default() -> Self {
        ProcessorConfig::ptree()
    }
}

/// Geometry of an N-core SPN processor: `cores` identical single-core
/// datapaths ([`MultiCoreConfig::core`]) behind a shared parameter memory
/// and a linear inter-core interconnect.
///
/// The multi-core simulator ([`crate::multicore::MultiCoreProcessor`])
/// executes compiled programs in two modes — batch-sharded (every core runs
/// the full program on a slice of the evidence batch) and partitioned
/// (the flattened op list is split across cores and intermediate operands
/// travel over the interconnect) — and attributes cycles per core to
/// compute, memory stalls and interconnect stalls.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiCoreConfig {
    /// Number of cores (must be at least 1).
    pub cores: usize,
    /// The per-core datapath, shared by all cores.
    pub core: ProcessorConfig,
    /// Latency model of the inter-core interconnect.
    pub interconnect: InterconnectConfig,
    /// Port model of the shared parameter memory.
    pub shared_memory: SharedMemoryConfig,
}

impl MultiCoreConfig {
    /// A multi-core configuration with `cores` copies of `core` and the
    /// default interconnect / shared-memory models.
    pub fn new(cores: usize, core: ProcessorConfig) -> Self {
        MultiCoreConfig {
            cores,
            core,
            interconnect: InterconnectConfig::default(),
            shared_memory: SharedMemoryConfig::default(),
        }
    }

    /// Validates the configuration, including the per-core datapath.
    ///
    /// # Errors
    ///
    /// Returns [`ProcessorError::InvalidConfig`] describing the first
    /// inconsistency found (zero cores, zero shared-memory ports, or an
    /// invalid per-core configuration).
    pub fn validate(&self) -> Result<()> {
        if self.cores == 0 {
            return Err(ProcessorError::InvalidConfig {
                reason: "at least one core is required".to_string(),
            });
        }
        if self.shared_memory.ports == 0 {
            return Err(ProcessorError::InvalidConfig {
                reason: "shared memory needs at least one port".to_string(),
            });
        }
        self.core.validate()
    }

    /// Report name of the configuration: the core name for one core,
    /// `"<core>x<cores>"` otherwise (e.g. `Ptreex4`).
    pub fn name(&self) -> String {
        if self.cores == 1 {
            self.core.name.clone()
        } else {
            format!("{}x{}", self.core.name, self.cores)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ptree_matches_paper_table() {
        let cfg = ProcessorConfig::ptree();
        cfg.validate().unwrap();
        assert_eq!(cfg.num_pes(), 30);
        assert_eq!(cfg.total_banks(), 32);
        assert_eq!(cfg.total_registers(), 2048);
        let (_, bits, mem) = cfg.storage_summary();
        assert_eq!(bits, 2048 * 32);
        assert_eq!(mem, 64 * 1024);
    }

    #[test]
    fn pvect_matches_paper_table() {
        let cfg = ProcessorConfig::pvect();
        cfg.validate().unwrap();
        assert_eq!(cfg.num_pes(), 16);
        assert_eq!(cfg.total_banks(), 32);
        assert_eq!(cfg.total_registers(), 2048);
    }

    #[test]
    fn pe_counts_per_level_follow_binary_tree() {
        let cfg = ProcessorConfig::ptree();
        assert_eq!(cfg.pes_at_level(0), 8);
        assert_eq!(cfg.pes_at_level(1), 4);
        assert_eq!(cfg.pes_at_level(2), 2);
        assert_eq!(cfg.pes_at_level(3), 1);
        assert_eq!(cfg.tree_inputs_per_tree(), 16);
    }

    #[test]
    fn writable_banks_widen_with_level() {
        let cfg = ProcessorConfig::ptree();
        // Leaf PE 0 of tree 0 writes banks 0..2, leaf PE 7 writes 14..16.
        assert_eq!(
            cfg.writable_banks(PePosition {
                tree: 0,
                level: 0,
                index: 0
            }),
            0..2
        );
        assert_eq!(
            cfg.writable_banks(PePosition {
                tree: 0,
                level: 0,
                index: 7
            }),
            14..16
        );
        // Level-1 PE 1 writes banks 4..8.
        assert_eq!(
            cfg.writable_banks(PePosition {
                tree: 0,
                level: 1,
                index: 1
            }),
            4..8
        );
        // The root reaches the whole private file of its tree.
        assert_eq!(
            cfg.writable_banks(PePosition {
                tree: 1,
                level: 3,
                index: 0
            }),
            16..32
        );
        assert!(cfg.can_write(
            PePosition {
                tree: 1,
                level: 3,
                index: 0
            },
            31
        ));
        assert!(!cfg.can_write(
            PePosition {
                tree: 1,
                level: 0,
                index: 0
            },
            0
        ));
    }

    #[test]
    fn commit_latency_grows_with_level() {
        let cfg = ProcessorConfig::ptree();
        assert_eq!(cfg.commit_latency(0), 0);
        assert_eq!(cfg.commit_latency(3), 3);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let mut cfg = ProcessorConfig::ptree();
        cfg.num_trees = 0;
        assert!(cfg.validate().is_err());

        let mut cfg = ProcessorConfig::ptree();
        cfg.leaf_pes_per_tree = 6;
        assert!(cfg.validate().is_err());

        let mut cfg = ProcessorConfig::ptree();
        cfg.tree_levels = 5;
        assert!(cfg.validate().is_err());

        let mut cfg = ProcessorConfig::ptree();
        cfg.regs_per_bank = 0;
        assert!(cfg.validate().is_err());

        let mut cfg = ProcessorConfig::ptree();
        cfg.banks_per_tree = 4;
        assert!(
            cfg.validate().is_err(),
            "crossbar narrower than tree inputs"
        );
    }

    #[test]
    fn default_is_ptree() {
        assert_eq!(ProcessorConfig::default(), ProcessorConfig::ptree());
    }

    #[test]
    fn zero_pes_and_zero_cores_are_structured_errors() {
        // A zero-PE core must be rejected with a clear reason instead of
        // being mislabelled as "not a power of two" (or panicking later in
        // tree construction).
        let mut cfg = ProcessorConfig::ptree();
        cfg.leaf_pes_per_tree = 0;
        match cfg.validate() {
            Err(ProcessorError::InvalidConfig { reason }) => {
                assert!(reason.contains("leaf PE"), "unexpected reason: {reason}");
            }
            other => panic!("expected InvalidConfig, got {other:?}"),
        }

        let mc = MultiCoreConfig::new(0, ProcessorConfig::ptree());
        match mc.validate() {
            Err(ProcessorError::InvalidConfig { reason }) => {
                assert!(reason.contains("core"), "unexpected reason: {reason}");
            }
            other => panic!("expected InvalidConfig, got {other:?}"),
        }

        let mut mc = MultiCoreConfig::new(2, ProcessorConfig::ptree());
        mc.shared_memory.ports = 0;
        assert!(mc.validate().is_err());

        // An invalid per-core config propagates through the multi-core check.
        let mut bad_core = ProcessorConfig::ptree();
        bad_core.leaf_pes_per_tree = 0;
        assert!(MultiCoreConfig::new(2, bad_core).validate().is_err());
    }

    #[test]
    fn multicore_name_appends_core_count() {
        let cfg = MultiCoreConfig::new(1, ProcessorConfig::ptree());
        assert_eq!(cfg.name(), "Ptree");
        let cfg = MultiCoreConfig::new(4, ProcessorConfig::ptree());
        assert_eq!(cfg.name(), "Ptreex4");
    }
}
