//! The PE datapath's emulated arithmetic format.
//!
//! The real processor is synthesised with a per-application floating-point
//! width; the simulator models that by rounding every PE result through
//! [`round_to`].  This module mirrors `spn_core::precision` **bit for bit**
//! (this crate deliberately has no dependency on `spn-core`, the same
//! arrangement as the duplicated `log_sum_exp` kernel in [`crate::tree`]);
//! the two quantizers must stay identical for the simulator to agree with
//! the interpreted reduced-precision oracle — a cross-crate test in
//! `spn-compiler` pins them against each other.
//!
//! Semantics (see `spn_core::precision` for the full discussion): mantissa
//! round-to-nearest-even, saturation to the format's largest finite value,
//! flush-to-zero below its smallest normal, and `±0` / `±inf` / NaN passed
//! through unchanged (`-inf` encodes log-domain probability zero).

use serde::{Deserialize, Serialize};

/// Widest custom exponent width (the `f64` exponent field).
pub const MAX_EXP_BITS: u8 = 11;
/// Widest custom mantissa width (the `f64` fraction field).
pub const MAX_MANT_BITS: u8 = 52;

/// The floating-point format the PE trees compute in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Precision {
    /// Native IEEE `f64` — no quantization.
    #[default]
    F64,
    /// IEEE `f32` (emulated by rounding through `as f32`).
    F32,
    /// A custom format with `exp_bits` exponent and `mant_bits` explicit
    /// mantissa bits; no subnormals (flush-to-zero), saturating overflow.
    Custom {
        /// Exponent field width in bits (2 ..= [`MAX_EXP_BITS`]).
        exp_bits: u8,
        /// Explicit mantissa field width in bits (1 ..= [`MAX_MANT_BITS`]).
        mant_bits: u8,
    },
}

impl Precision {
    /// The format's largest finite value.
    pub fn max_value(self) -> f64 {
        match self {
            Precision::F64 => f64::MAX,
            Precision::F32 => f64::from(f32::MAX),
            Precision::Custom {
                exp_bits,
                mant_bits,
            } => {
                let (exp_bits, mant_bits) = clamped(exp_bits, mant_bits);
                let emax = (1i32 << (exp_bits - 1)) - 1;
                (2.0 - (2.0f64).powi(-i32::from(mant_bits))) * (2.0f64).powi(emax)
            }
        }
    }

    /// The format's smallest positive normal value.
    pub fn min_positive(self) -> f64 {
        match self {
            Precision::F64 => f64::MIN_POSITIVE,
            Precision::F32 => f64::from(f32::MIN_POSITIVE),
            Precision::Custom { exp_bits, .. } => {
                let (exp_bits, _) = clamped(exp_bits, 1);
                (2.0f64).powi(2 - (1i32 << (exp_bits - 1)))
            }
        }
    }
}

/// Clamps directly-constructed custom field widths into the supported range
/// (mirrors `spn_core::precision`; keeps the quantizer total).
fn clamped(exp_bits: u8, mant_bits: u8) -> (u8, u8) {
    (
        exp_bits.clamp(2, MAX_EXP_BITS),
        mant_bits.clamp(1, MAX_MANT_BITS),
    )
}

/// Quantizes `x` to `precision` — identical, bit for bit, to
/// `spn_core::precision::round_to`.
#[inline]
pub fn round_to(precision: Precision, x: f64) -> f64 {
    match precision {
        Precision::F64 => x,
        Precision::F32 => {
            // `as f32` rounds to nearest but overflows finite values beyond
            // the f32 range to ±inf; saturate those to ±max like the custom
            // formats, so finite inputs never produce infinities.
            let y = x as f32 as f64;
            if y.is_infinite() && x.is_finite() {
                f64::from(f32::MAX).copysign(x)
            } else {
                y
            }
        }
        Precision::Custom {
            exp_bits,
            mant_bits,
        } => quantize_custom(exp_bits, mant_bits, x),
    }
}

/// The custom-format quantizer: mantissa round-to-nearest-even, exponent
/// saturation to `±max`, flush-to-zero below the smallest normal.
fn quantize_custom(exp_bits: u8, mant_bits: u8, x: f64) -> f64 {
    if x == 0.0 || !x.is_finite() {
        return x;
    }
    let (exp_bits, mant_bits) = clamped(exp_bits, mant_bits);

    let shift = u32::from(MAX_MANT_BITS - mant_bits);
    let rounded = if shift == 0 {
        x
    } else {
        let bits = x.to_bits();
        let remainder = bits & ((1u64 << shift) - 1);
        let half = 1u64 << (shift - 1);
        let mut kept = bits >> shift;
        if remainder > half || (remainder == half && kept & 1 == 1) {
            kept += 1;
        }
        f64::from_bits(kept << shift)
    };

    let precision = Precision::Custom {
        exp_bits,
        mant_bits,
    };
    let max = precision.max_value();
    if rounded.abs() > max {
        return max.copysign(rounded);
    }
    if rounded.abs() < precision.min_positive() {
        return 0.0f64.copysign(rounded);
    }
    rounded
}

#[cfg(test)]
mod tests {
    use super::*;

    const E8M10: Precision = Precision::Custom {
        exp_bits: 8,
        mant_bits: 10,
    };

    #[test]
    fn f64_is_identity() {
        for x in [0.0, 1.0, -0.3, 1e300, f64::NEG_INFINITY] {
            assert_eq!(round_to(Precision::F64, x).to_bits(), x.to_bits());
        }
    }

    #[test]
    fn custom_rounds_saturates_and_flushes() {
        let p = Precision::Custom {
            exp_bits: 8,
            mant_bits: 2,
        };
        assert_eq!(round_to(p, 1.1), 1.0);
        assert_eq!(round_to(p, 1.125), 1.0); // tie to even
        assert_eq!(round_to(p, 1.375), 1.5); // tie to even
        assert_eq!(round_to(E8M10, 1e39), E8M10.max_value());
        assert_eq!(round_to(E8M10, -1e-39).to_bits(), (-0.0f64).to_bits());
        assert_eq!(round_to(E8M10, f64::NEG_INFINITY), f64::NEG_INFINITY);
    }

    #[test]
    fn quantization_is_idempotent() {
        for x in [0.3, -0.7, 1e-30, 3.5e38, 0.999] {
            let once = round_to(E8M10, x);
            assert_eq!(round_to(E8M10, once).to_bits(), once.to_bits());
        }
    }
}
