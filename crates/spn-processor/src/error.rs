use std::fmt;

/// Errors raised by the processor simulator.
///
/// Every variant corresponds to a program that the real hardware could not
/// execute correctly: structural-hazard violations (port conflicts), values
/// read while still in flight in the PE pipeline, or plain malformed
/// instructions.  The compiler is expected to never produce such programs, so
/// these errors double as a verification oracle for the compiler.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ProcessorError {
    /// Two reads addressed the same register bank in one cycle.
    ReadPortConflict {
        /// Cycle at which the conflict occurred.
        cycle: u64,
        /// The over-subscribed bank.
        bank: usize,
    },
    /// Two writes tried to commit to the same register bank in one cycle.
    WritePortConflict {
        /// Cycle at which the conflict occurred.
        cycle: u64,
        /// The over-subscribed bank.
        bank: usize,
    },
    /// A PE tried to write to a bank outside its write connectivity.
    IllegalWriteBank {
        /// Cycle of the offending instruction.
        cycle: u64,
        /// Tree containing the PE.
        tree: usize,
        /// PE level within the tree.
        level: usize,
        /// PE index within the level.
        pe: usize,
        /// The unreachable bank.
        bank: usize,
    },
    /// A read observed a register whose producing write had not committed yet.
    ReadBeforeWrite {
        /// Cycle of the offending read.
        cycle: u64,
        /// Bank of the register.
        bank: usize,
        /// Register index within the bank.
        reg: usize,
    },
    /// A data-memory operation was combined with conflicting register traffic.
    MemoryPortConflict {
        /// Cycle of the offending instruction.
        cycle: u64,
        /// Human readable description of the conflict.
        reason: String,
    },
    /// An instruction field was out of range for the configuration.
    MalformedInstruction {
        /// Cycle (instruction index) of the offending instruction.
        cycle: u64,
        /// Human readable description.
        reason: String,
    },
    /// The program referenced a data-memory row outside the configured size.
    MemoryOutOfRange {
        /// The offending row address.
        row: usize,
        /// Number of rows available.
        rows: usize,
    },
    /// The configuration itself is inconsistent.
    InvalidConfig {
        /// Human readable description.
        reason: String,
    },
    /// The supplied input vector does not match the program's input layout.
    InputMismatch {
        /// Inputs expected by the program.
        expected: usize,
        /// Inputs supplied.
        got: usize,
    },
}

impl fmt::Display for ProcessorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProcessorError::ReadPortConflict { cycle, bank } => {
                write!(f, "cycle {cycle}: more than one read of bank {bank}")
            }
            ProcessorError::WritePortConflict { cycle, bank } => {
                write!(f, "cycle {cycle}: more than one write committing to bank {bank}")
            }
            ProcessorError::IllegalWriteBank {
                cycle,
                tree,
                level,
                pe,
                bank,
            } => write!(
                f,
                "cycle {cycle}: PE (tree {tree}, level {level}, index {pe}) cannot write bank {bank}"
            ),
            ProcessorError::ReadBeforeWrite { cycle, bank, reg } => write!(
                f,
                "cycle {cycle}: read of bank {bank} reg {reg} while its write is still in flight"
            ),
            ProcessorError::MemoryPortConflict { cycle, reason } => {
                write!(f, "cycle {cycle}: memory port conflict: {reason}")
            }
            ProcessorError::MalformedInstruction { cycle, reason } => {
                write!(f, "cycle {cycle}: malformed instruction: {reason}")
            }
            ProcessorError::MemoryOutOfRange { row, rows } => {
                write!(f, "data memory row {row} out of range ({rows} rows)")
            }
            ProcessorError::InvalidConfig { reason } => {
                write!(f, "invalid processor configuration: {reason}")
            }
            ProcessorError::InputMismatch { expected, got } => {
                write!(f, "program expects {expected} inputs but {got} were supplied")
            }
        }
    }
}

impl std::error::Error for ProcessorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty() {
        let errors = [
            ProcessorError::ReadPortConflict { cycle: 1, bank: 2 },
            ProcessorError::WritePortConflict { cycle: 1, bank: 2 },
            ProcessorError::IllegalWriteBank {
                cycle: 0,
                tree: 0,
                level: 1,
                pe: 2,
                bank: 9,
            },
            ProcessorError::ReadBeforeWrite {
                cycle: 3,
                bank: 0,
                reg: 1,
            },
            ProcessorError::MemoryPortConflict {
                cycle: 2,
                reason: "load with writeback".into(),
            },
            ProcessorError::MalformedInstruction {
                cycle: 2,
                reason: "bad bank".into(),
            },
            ProcessorError::MemoryOutOfRange {
                row: 600,
                rows: 512,
            },
            ProcessorError::InvalidConfig {
                reason: "zero trees".into(),
            },
            ProcessorError::InputMismatch {
                expected: 4,
                got: 3,
            },
        ];
        for e in errors {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ProcessorError>();
    }
}
