//! Banked register file with per-cycle port accounting.
//!
//! Each PE tree owns a private register file of `banks_per_tree` banks; the
//! simulator stores all of them in one [`RegisterFile`] addressed by global
//! bank index.  Reads and writes are tracked per cycle so the processor can
//! flag port conflicts (more than one access of a bank in a cycle), which the
//! paper's crossbar and bank design forbid.

use crate::config::ProcessorConfig;
use crate::error::ProcessorError;
use crate::Result;

/// The processor's register storage: `total_banks × regs_per_bank` words.
#[derive(Debug, Clone)]
pub struct RegisterFile {
    banks: usize,
    regs_per_bank: usize,
    data: Vec<f64>,
    /// Cycle of the last read of each bank (for port conflict checks).
    read_cycle: Vec<Option<u64>>,
    /// Cycle of the last committed write of each bank.
    write_cycle: Vec<Option<u64>>,
}

impl RegisterFile {
    /// Creates a zero-initialised register file for `config`.
    pub fn new(config: &ProcessorConfig) -> Self {
        let banks = config.total_banks();
        RegisterFile {
            banks,
            regs_per_bank: config.regs_per_bank,
            data: vec![0.0; banks * config.regs_per_bank],
            read_cycle: vec![None; banks],
            write_cycle: vec![None; banks],
        }
    }

    /// Number of banks.
    pub fn banks(&self) -> usize {
        self.banks
    }

    /// Registers per bank.
    pub fn regs_per_bank(&self) -> usize {
        self.regs_per_bank
    }

    /// Clears all contents and per-cycle port bookkeeping, keeping the
    /// allocation (used between queries of a batched run).
    pub fn reset(&mut self) {
        self.data.fill(0.0);
        self.read_cycle.fill(None);
        self.write_cycle.fill(None);
    }

    fn check_address(&self, bank: usize, reg: usize, cycle: u64) -> Result<()> {
        if bank >= self.banks || reg >= self.regs_per_bank {
            return Err(ProcessorError::MalformedInstruction {
                cycle,
                reason: format!("register address bank {bank} reg {reg} out of range"),
            });
        }
        Ok(())
    }

    /// Reads `reg` of `bank` at `cycle`, consuming the bank's read port.
    ///
    /// # Errors
    ///
    /// Returns [`ProcessorError::ReadPortConflict`] when the bank was already
    /// read this cycle, or a malformed-instruction error for bad addresses.
    pub fn read(&mut self, bank: usize, reg: usize, cycle: u64) -> Result<f64> {
        self.check_address(bank, reg, cycle)?;
        if self.read_cycle[bank] == Some(cycle) {
            return Err(ProcessorError::ReadPortConflict { cycle, bank });
        }
        self.read_cycle[bank] = Some(cycle);
        Ok(self.data[bank * self.regs_per_bank + reg])
    }

    /// Reads without consuming a port (used by the simulator to fetch the
    /// final output value after execution).
    pub fn peek(&self, bank: usize, reg: usize) -> f64 {
        self.data[bank * self.regs_per_bank + reg]
    }

    /// Commits a write of `value` to `reg` of `bank` at `cycle`.
    ///
    /// # Errors
    ///
    /// Returns [`ProcessorError::WritePortConflict`] when the bank already
    /// committed a write this cycle, or a malformed-instruction error for bad
    /// addresses.
    pub fn write(&mut self, bank: usize, reg: usize, value: f64, cycle: u64) -> Result<()> {
        self.check_address(bank, reg, cycle)?;
        if self.write_cycle[bank] == Some(cycle) {
            return Err(ProcessorError::WritePortConflict { cycle, bank });
        }
        self.write_cycle[bank] = Some(cycle);
        self.data[bank * self.regs_per_bank + reg] = value;
        Ok(())
    }

    /// Writes a full row (register `reg` of every bank), e.g. for a memory
    /// load.  Consumes the write port of every bank.
    ///
    /// # Errors
    ///
    /// Returns [`ProcessorError::WritePortConflict`] if any bank already
    /// committed a write this cycle.
    pub fn write_row(&mut self, reg: usize, values: &[f64], cycle: u64) -> Result<()> {
        for (bank, &value) in values.iter().enumerate().take(self.banks) {
            self.write(bank, reg, value, cycle)?;
        }
        Ok(())
    }

    /// Reads a full row (register `reg` of every bank), e.g. for a memory
    /// store.  Consumes the read port of every bank.
    ///
    /// # Errors
    ///
    /// Returns [`ProcessorError::ReadPortConflict`] if any bank was already
    /// read this cycle.
    pub fn read_row(&mut self, reg: usize, cycle: u64) -> Result<Vec<f64>> {
        (0..self.banks).map(|b| self.read(b, reg, cycle)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn regfile() -> RegisterFile {
        RegisterFile::new(&ProcessorConfig::ptree())
    }

    #[test]
    fn read_back_written_value() {
        let mut rf = regfile();
        rf.write(3, 10, 2.5, 0).unwrap();
        assert_eq!(rf.read(3, 10, 1).unwrap(), 2.5);
        assert_eq!(rf.peek(3, 10), 2.5);
    }

    #[test]
    fn double_read_of_bank_in_one_cycle_is_a_conflict() {
        let mut rf = regfile();
        rf.read(5, 0, 7).unwrap();
        // A second read of the *same bank* conflicts even at another register.
        assert!(matches!(
            rf.read(5, 1, 7),
            Err(ProcessorError::ReadPortConflict { cycle: 7, bank: 5 })
        ));
        // The next cycle is fine again.
        assert!(rf.read(5, 1, 8).is_ok());
    }

    #[test]
    fn double_write_of_bank_in_one_cycle_is_a_conflict() {
        let mut rf = regfile();
        rf.write(2, 0, 1.0, 4).unwrap();
        assert!(matches!(
            rf.write(2, 9, 2.0, 4),
            Err(ProcessorError::WritePortConflict { cycle: 4, bank: 2 })
        ));
        assert!(rf.write(2, 9, 2.0, 5).is_ok());
    }

    #[test]
    fn different_banks_do_not_conflict() {
        let mut rf = regfile();
        rf.read(0, 0, 1).unwrap();
        rf.read(1, 0, 1).unwrap();
        rf.write(0, 0, 1.0, 1).unwrap();
        rf.write(1, 0, 1.0, 1).unwrap();
    }

    #[test]
    fn row_access_uses_every_port() {
        let mut rf = regfile();
        let values: Vec<f64> = (0..32).map(|i| i as f64).collect();
        rf.write_row(4, &values, 0).unwrap();
        assert_eq!(rf.peek(31, 4), 31.0);
        let row = rf.read_row(4, 1).unwrap();
        assert_eq!(row, values);
        // After a row write, a scalar write the same cycle conflicts.
        let mut rf = regfile();
        rf.write_row(0, &values, 0).unwrap();
        assert!(rf.write(7, 1, 9.0, 0).is_err());
    }

    #[test]
    fn out_of_range_addresses_are_malformed() {
        let mut rf = regfile();
        assert!(matches!(
            rf.read(99, 0, 0),
            Err(ProcessorError::MalformedInstruction { .. })
        ));
        assert!(matches!(
            rf.write(0, 1000, 1.0, 0),
            Err(ProcessorError::MalformedInstruction { .. })
        ));
    }
}
