//! Performance counters reported by the execution models.
//!
//! The paper's headline metric is *effective SPN operations per cycle*: the
//! number of arithmetic operations of the flattened SPN divided by the cycles
//! a platform needs to execute one inference pass.  The same report struct is
//! shared by the custom-processor simulator and the CPU/GPU baseline models
//! so benchmark harnesses can tabulate them side by side.
//!
//! Reports are batch-aware: counters accumulate over the queries of an
//! evidence batch via [`PerfReport::merge`], and the [`PerfReport::queries`]
//! field turns the totals into amortised per-query metrics
//! ([`PerfReport::cycles_per_query`], [`PerfReport::queries_per_second`]).

use serde::{Deserialize, Serialize};

/// Performance summary of executing one or more SPN inference passes on a
/// platform.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct PerfReport {
    /// Name of the platform/configuration that produced the numbers.
    pub platform: String,
    /// Inference passes (evidence queries) the counters cover.
    pub queries: u64,
    /// Total cycles across all counted inference passes.
    pub cycles: u64,
    /// SPN arithmetic operations (adds + multiplies) in the workload.
    pub source_ops: u64,
    /// Arithmetic operations actually issued on the hardware (may exceed
    /// `source_ops` on platforms that replicate work, or equal it).
    pub issued_ops: u64,
    /// Instructions (or instruction bundles) executed.
    pub instructions: u64,
    /// Fully idle issue slots or stall cycles.
    pub stall_cycles: u64,
    /// Data-memory (or DRAM/shared-memory) load transactions.
    pub memory_loads: u64,
    /// Data-memory store transactions.
    pub memory_stores: u64,
    /// Register-file or shared-memory writebacks of intermediate values.
    pub writebacks: u64,
    /// Register-file or shared-memory reads of operands.
    pub operand_reads: u64,
}

impl PerfReport {
    /// Effective throughput: SPN operations per cycle.
    pub fn ops_per_cycle(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.source_ops as f64 / self.cycles as f64
        }
    }

    /// Fraction of issued operations that were useful SPN work.
    pub fn issue_efficiency(&self) -> f64 {
        if self.issued_ops == 0 {
            0.0
        } else {
            self.source_ops as f64 / self.issued_ops as f64
        }
    }

    /// Speed-up of this report relative to `baseline` (ratio of ops/cycle).
    pub fn speedup_over(&self, baseline: &PerfReport) -> f64 {
        let base = baseline.ops_per_cycle();
        if base == 0.0 {
            f64::INFINITY
        } else {
            self.ops_per_cycle() / base
        }
    }

    /// Amortised cycles per query; zero when no queries were counted.
    pub fn cycles_per_query(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            self.cycles as f64 / self.queries as f64
        }
    }

    /// Modelled query throughput at `clock_hz` cycles per second; zero when
    /// no cycles were counted.
    pub fn queries_per_second(&self, clock_hz: f64) -> f64 {
        let cpq = self.cycles_per_query();
        if cpq == 0.0 {
            0.0
        } else {
            clock_hz / cpq
        }
    }

    /// Accumulates `other`'s counters into this report (batched execution).
    ///
    /// The platform name of `self` wins when already set; a report merged
    /// into a fresh `Default` adopts `other`'s name.
    pub fn merge(&mut self, other: &PerfReport) {
        if self.platform.is_empty() {
            self.platform.clone_from(&other.platform);
        }
        self.queries += other.queries;
        self.cycles += other.cycles;
        self.source_ops += other.source_ops;
        self.issued_ops += other.issued_ops;
        self.instructions += other.instructions;
        self.stall_cycles += other.stall_cycles;
        self.memory_loads += other.memory_loads;
        self.memory_stores += other.memory_stores;
        self.writebacks += other.writebacks;
        self.operand_reads += other.operand_reads;
    }
}

/// Cycle attribution of one core of a multi-core run.
///
/// The four cycle classes partition the makespan exactly:
/// `compute + memory stall + interconnect stall + idle = makespan`
/// ([`MultiCorePerf::check_accounting`] verifies this, and a property test
/// pins it for random workloads).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct CorePerf {
    /// Core index.
    pub core: usize,
    /// Cycles the core spent executing instructions (including the
    /// program's own stall slots and pipeline drain).
    pub compute_cycles: u64,
    /// Cycles lost to shared-parameter-memory port contention.
    pub memory_stall_cycles: u64,
    /// Cycles exposed waiting on in-flight inter-core transfers (pipeline
    /// fill; steady-state transfers overlap with compute).
    pub interconnect_stall_cycles: u64,
    /// Cycles the core sat idle (no shard left, or waiting for an upstream
    /// pipeline stage beyond the exposed transfer latency).
    pub idle_cycles: u64,
    /// The core's ordinary work counters (its queries, issued ops, memory
    /// traffic, ...); `work.cycles` equals `compute_cycles`.
    pub work: PerfReport,
}

impl CorePerf {
    /// Cycles the core was doing or waiting on something attributable:
    /// compute + memory stalls + interconnect stalls.
    pub fn busy_cycles(&self) -> u64 {
        self.compute_cycles + self.memory_stall_cycles + self.interconnect_stall_cycles
    }

    /// Total cycles accounted for; equals the makespan in a consistent
    /// multi-core report.
    pub fn accounted_cycles(&self) -> u64 {
        self.busy_cycles() + self.idle_cycles
    }
}

/// Per-core cycle attribution of one multi-core execution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct MultiCorePerf {
    /// End-to-end cycles of the run: the last cycle any core was busy.
    pub makespan_cycles: u64,
    /// One entry per core, in core order.
    pub per_core: Vec<CorePerf>,
}

impl MultiCorePerf {
    /// Folds the per-core attribution into one batch-level [`PerfReport`]:
    /// work counters are summed across cores, `cycles` is the makespan (so
    /// `cycles_per_query` reflects the parallel speedup), and modeled
    /// memory/interconnect stalls are added to the summed stall count.
    ///
    /// `queries` is passed explicitly because the two execution modes count
    /// differently: sharded runs spread the batch over cores (the sum of
    /// per-core queries), pipelined runs push every query through every core.
    pub fn merged(&self, platform: &str, queries: u64) -> PerfReport {
        let mut merged = PerfReport {
            platform: platform.to_string(),
            queries,
            cycles: self.makespan_cycles,
            ..Default::default()
        };
        for core in &self.per_core {
            merged.source_ops += core.work.source_ops;
            merged.issued_ops += core.work.issued_ops;
            merged.instructions += core.work.instructions;
            merged.stall_cycles +=
                core.work.stall_cycles + core.memory_stall_cycles + core.interconnect_stall_cycles;
            merged.memory_loads += core.work.memory_loads;
            merged.memory_stores += core.work.memory_stores;
            merged.writebacks += core.work.writebacks;
            merged.operand_reads += core.work.operand_reads;
        }
        merged
    }

    /// Verifies the cycle-accounting invariant: every core's
    /// compute + memory stall + interconnect stall + idle cycles equal the
    /// makespan.
    ///
    /// # Errors
    ///
    /// Returns a description of the first core whose attribution does not
    /// sum to the makespan.
    pub fn check_accounting(&self) -> Result<(), String> {
        for core in &self.per_core {
            if core.accounted_cycles() != self.makespan_cycles {
                return Err(format!(
                    "core {}: compute {} + mem {} + interconnect {} + idle {} = {} != makespan {}",
                    core.core,
                    core.compute_cycles,
                    core.memory_stall_cycles,
                    core.interconnect_stall_cycles,
                    core.idle_cycles,
                    core.accounted_cycles(),
                    self.makespan_cycles
                ));
            }
        }
        Ok(())
    }
}

impl std::fmt::Display for MultiCorePerf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "makespan {} cycles", self.makespan_cycles)?;
        for core in &self.per_core {
            write!(
                f,
                "; core {}: {}c/{}m/{}i/{}idle",
                core.core,
                core.compute_cycles,
                core.memory_stall_cycles,
                core.interconnect_stall_cycles,
                core.idle_cycles
            )?;
        }
        Ok(())
    }
}

impl std::fmt::Display for PerfReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: {:.3} ops/cycle ({} ops in {} cycles, {} loads, {} stores, {} stalls)",
            self.platform,
            self.ops_per_cycle(),
            self.source_ops,
            self.cycles,
            self.memory_loads,
            self.memory_stores,
            self.stall_cycles,
        )?;
        if self.queries > 1 {
            write!(
                f,
                " over {} queries ({:.1} cycles/query)",
                self.queries,
                self.cycles_per_query()
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(ops: u64, cycles: u64) -> PerfReport {
        PerfReport {
            platform: "test".into(),
            queries: 1,
            cycles,
            source_ops: ops,
            issued_ops: ops,
            ..Default::default()
        }
    }

    #[test]
    fn merge_accumulates_counters_and_queries() {
        let mut total = PerfReport::default();
        total.merge(&report(100, 10));
        total.merge(&report(100, 30));
        assert_eq!(total.platform, "test");
        assert_eq!(total.queries, 2);
        assert_eq!(total.cycles, 40);
        assert_eq!(total.source_ops, 200);
        assert_eq!(total.cycles_per_query(), 20.0);
        assert_eq!(total.queries_per_second(40.0), 2.0);
        assert!(total.to_string().contains("2 queries"));
    }

    #[test]
    fn per_query_metrics_are_zero_without_queries() {
        let empty = PerfReport::default();
        assert_eq!(empty.cycles_per_query(), 0.0);
        assert_eq!(empty.queries_per_second(1e9), 0.0);
    }

    #[test]
    fn ops_per_cycle_division() {
        assert_eq!(report(100, 10).ops_per_cycle(), 10.0);
        assert_eq!(report(100, 0).ops_per_cycle(), 0.0);
    }

    #[test]
    fn speedup_is_a_ratio_of_throughputs() {
        let fast = report(100, 10);
        let slow = report(100, 100);
        assert_eq!(fast.speedup_over(&slow), 10.0);
        assert_eq!(slow.speedup_over(&fast), 0.1);
        assert!(fast.speedup_over(&report(0, 0)).is_infinite());
    }

    #[test]
    fn issue_efficiency_accounts_for_overhead_work() {
        let mut r = report(80, 10);
        r.issued_ops = 100;
        assert!((r.issue_efficiency() - 0.8).abs() < 1e-12);
        assert_eq!(report(0, 1).issue_efficiency(), 0.0);
    }

    #[test]
    fn display_mentions_platform_and_throughput() {
        let s = report(100, 10).to_string();
        assert!(s.contains("test"));
        assert!(s.contains("10.000"));
    }
}
