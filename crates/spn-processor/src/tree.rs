//! Combinational evaluation of one PE tree configuration.
//!
//! The tree is a complete binary reduction tree: level-0 PEs take two
//! crossbar inputs each, a PE at level `l > 0` takes the outputs of the two
//! PEs directly below it.  Each PE either adds, multiplies, forwards one of
//! its inputs, or idles.  The simulator evaluates the whole tree for one
//! instruction and lets the processor core attach the per-level pipeline
//! latency when committing write-backs.

use crate::config::ProcessorConfig;
use crate::error::ProcessorError;
use crate::isa::{PeOp, TreeInstr};
use crate::precision::{round_to, Precision};
use crate::Result;

/// Outputs of every PE of a tree for one instruction, level-major
/// (`outputs[level][index]`).
#[derive(Debug, Clone, PartialEq)]
pub struct TreeOutputs {
    /// PE outputs per level; `outputs[0]` has one entry per leaf PE.
    pub levels: Vec<Vec<f64>>,
}

impl TreeOutputs {
    /// Returns the output of the PE at `(level, index)`.
    ///
    /// # Panics
    ///
    /// Panics when the position does not exist.
    pub fn value(&self, level: usize, index: usize) -> f64 {
        self.levels[level][index]
    }
}

/// Log-sum-exp of two natural-log values: `ln(e^a + e^b)` without overflow,
/// with `-inf` as the additive identity.
///
/// This mirrors `spn_core::numeric::log_sum_exp` bit for bit (this crate has
/// no dependency on `spn-core`, so the three-line kernel is duplicated); the
/// formulas must stay identical for the simulator to agree with the
/// interpreted log-domain oracle.
#[inline]
pub fn log_sum_exp(a: f64, b: f64) -> f64 {
    let (hi, lo) = if a >= b { (a, b) } else { (b, a) };
    if hi == f64::NEG_INFINITY {
        f64::NEG_INFINITY
    } else {
        hi + (lo - hi).exp().ln_1p()
    }
}

/// Applies one PE operation to its two inputs, rounding arithmetic results
/// (`Add`/`Mul`/`Max`/`Lse`) to the datapath's emulated `precision`.
///
/// Forwarding (`PassA`/`PassB`) and the idle output are exact in every
/// format — a pass-through latch has no rounder — and quantization is
/// idempotent, so values circulating through passes, registers and the data
/// memory are quantized exactly once per arithmetic operation.
pub fn apply_pe(op: PeOp, a: f64, b: f64, precision: Precision) -> f64 {
    match op {
        PeOp::Nop => 0.0,
        PeOp::Add => round_to(precision, a + b),
        PeOp::Mul => round_to(precision, a * b),
        PeOp::Max => round_to(precision, a.max(b)),
        PeOp::Lse => round_to(precision, log_sum_exp(a, b)),
        // 0.0 and 1.0 are exact in every emulated format, but the result is
        // still rounded so the comparator behaves like the other datapath
        // ops under a hypothetical format that cannot represent them.
        PeOp::Sam => round_to(precision, f64::from(u8::from(a < b))),
        PeOp::PassA => a,
        PeOp::PassB => b,
    }
}

/// Evaluates the PE tree described by `instr` on the resolved crossbar input
/// values `inputs` (one per tree input, `2 × leaf PEs` entries), with every
/// PE computing in the emulated `precision`.
///
/// # Errors
///
/// Returns a malformed-instruction error when the instruction's vectors do
/// not match the configuration geometry.
pub fn evaluate_tree(
    config: &ProcessorConfig,
    instr: &TreeInstr,
    inputs: &[f64],
    cycle: u64,
    precision: Precision,
) -> Result<TreeOutputs> {
    let expected_inputs = config.tree_inputs_per_tree();
    if inputs.len() != expected_inputs {
        return Err(ProcessorError::MalformedInstruction {
            cycle,
            reason: format!(
                "tree received {} inputs, expected {expected_inputs}",
                inputs.len()
            ),
        });
    }
    let expected_pes: usize = (0..config.tree_levels)
        .map(|l| config.pes_at_level(l))
        .sum();
    if instr.pe_ops.len() != expected_pes {
        return Err(ProcessorError::MalformedInstruction {
            cycle,
            reason: format!(
                "tree instruction has {} PE opcodes, expected {expected_pes}",
                instr.pe_ops.len()
            ),
        });
    }

    let mut levels: Vec<Vec<f64>> = Vec::with_capacity(config.tree_levels);
    for level in 0..config.tree_levels {
        let count = config.pes_at_level(level);
        let mut outputs = Vec::with_capacity(count);
        for index in 0..count {
            let (a, b) = if level == 0 {
                (inputs[2 * index], inputs[2 * index + 1])
            } else {
                let below = &levels[level - 1];
                (below[2 * index], below[2 * index + 1])
            };
            let flat = TreeInstr::pe_flat_index(config, level, index);
            outputs.push(apply_pe(instr.pe_ops[flat], a, b, precision));
        }
        levels.push(outputs);
    }
    Ok(TreeOutputs { levels })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::ReadSel;

    fn tree_instr(config: &ProcessorConfig) -> TreeInstr {
        TreeInstr {
            reads: vec![ReadSel::None; config.tree_inputs_per_tree()],
            pe_ops: vec![
                PeOp::Nop;
                (0..config.tree_levels)
                    .map(|l| config.pes_at_level(l))
                    .sum()
            ],
            writes: Vec::new(),
        }
    }

    #[test]
    fn pe_semantics() {
        assert_eq!(apply_pe(PeOp::Add, 2.0, 3.0, Precision::F64), 5.0);
        assert_eq!(apply_pe(PeOp::Mul, 2.0, 3.0, Precision::F64), 6.0);
        assert_eq!(apply_pe(PeOp::Max, 2.0, 3.0, Precision::F64), 3.0);
        // The sampler comparator is strict and non-commutative.
        assert_eq!(apply_pe(PeOp::Sam, 2.0, 3.0, Precision::F64), 1.0);
        assert_eq!(apply_pe(PeOp::Sam, 3.0, 2.0, Precision::F64), 0.0);
        assert_eq!(apply_pe(PeOp::Sam, 2.0, 2.0, Precision::F64), 0.0);
        assert!(PeOp::Sam.is_arithmetic());
        assert_eq!(apply_pe(PeOp::PassA, 2.0, 3.0, Precision::F64), 2.0);
        assert_eq!(apply_pe(PeOp::PassB, 2.0, 3.0, Precision::F64), 3.0);
        assert_eq!(apply_pe(PeOp::Nop, 2.0, 3.0, Precision::F64), 0.0);
    }

    #[test]
    fn lse_pe_matches_log_domain_addition() {
        // ln(e^a + e^b) with the -inf identity: exactly the log-domain sum.
        let a = 0.25f64.ln();
        let b = 0.5f64.ln();
        assert!((apply_pe(PeOp::Lse, a, b, Precision::F64) - 0.75f64.ln()).abs() < 1e-12);
        assert_eq!(apply_pe(PeOp::Lse, f64::NEG_INFINITY, b, Precision::F64), b);
        assert_eq!(
            apply_pe(
                PeOp::Lse,
                f64::NEG_INFINITY,
                f64::NEG_INFINITY,
                Precision::F64
            ),
            f64::NEG_INFINITY
        );
        // Far below the linear f64 range the sum still lands on ln 2 above.
        let tiny = -5000.0;
        assert!(
            (apply_pe(PeOp::Lse, tiny, tiny, Precision::F64) - (tiny + 2.0f64.ln())).abs() < 1e-12
        );
        assert!(PeOp::Lse.is_arithmetic());
    }

    #[test]
    fn reduced_precision_pes_quantize_arithmetic_but_not_passes() {
        let p = Precision::Custom {
            exp_bits: 8,
            mant_bits: 2,
        };
        // 1.1 + 0.0 = 1.1 rounds to 1.0 with a 2-bit mantissa...
        assert_eq!(apply_pe(PeOp::Add, 1.1, 0.0, p), 1.0);
        assert_eq!(apply_pe(PeOp::Mul, 1.1, 1.0, p), 1.0);
        assert_eq!(apply_pe(PeOp::Max, 1.1, 0.3, p), 1.0);
        // ...but a pass-through forwards the raw value unrounded.
        assert_eq!(apply_pe(PeOp::PassA, 1.1, 0.0, p), 1.1);
        assert_eq!(apply_pe(PeOp::PassB, 0.0, 1.1, p), 1.1);
        // Lse quantizes too, and -inf (log-domain zero) survives.
        assert_eq!(
            apply_pe(PeOp::Lse, f64::NEG_INFINITY, f64::NEG_INFINITY, p),
            f64::NEG_INFINITY
        );
        let lse = apply_pe(PeOp::Lse, 0.25f64.ln(), 0.5f64.ln(), p);
        assert_eq!(round_to(p, lse).to_bits(), lse.to_bits());
    }

    #[test]
    fn full_tree_reduction() {
        // Sum of 16 inputs through a 4-level adder tree.
        let cfg = ProcessorConfig::ptree();
        let mut instr = tree_instr(&cfg);
        for op in &mut instr.pe_ops {
            *op = PeOp::Add;
        }
        let inputs: Vec<f64> = (1..=16).map(f64::from).collect();
        let out = evaluate_tree(&cfg, &instr, &inputs, 0, Precision::F64).unwrap();
        assert_eq!(out.value(3, 0), 136.0);
        assert_eq!(out.value(0, 0), 3.0);
        assert_eq!(out.value(1, 0), 10.0);
    }

    #[test]
    fn mixed_tree_with_pass_through() {
        // Compute (a*b) propagated up through passes: root = a*b.
        let cfg = ProcessorConfig::ptree();
        let mut instr = tree_instr(&cfg);
        instr.pe_ops[TreeInstr::pe_flat_index(&cfg, 0, 0)] = PeOp::Mul;
        instr.pe_ops[TreeInstr::pe_flat_index(&cfg, 1, 0)] = PeOp::PassA;
        instr.pe_ops[TreeInstr::pe_flat_index(&cfg, 2, 0)] = PeOp::PassA;
        instr.pe_ops[TreeInstr::pe_flat_index(&cfg, 3, 0)] = PeOp::PassA;
        let mut inputs = vec![0.0; 16];
        inputs[0] = 3.0;
        inputs[1] = 4.0;
        let out = evaluate_tree(&cfg, &instr, &inputs, 0, Precision::F64).unwrap();
        assert_eq!(out.value(3, 0), 12.0);
    }

    #[test]
    fn pvect_tree_is_single_level() {
        let cfg = ProcessorConfig::pvect();
        let mut instr = tree_instr(&cfg);
        instr.pe_ops[0] = PeOp::Mul;
        instr.pe_ops[7] = PeOp::Add;
        let mut inputs = vec![0.0; 16];
        inputs[0] = 2.0;
        inputs[1] = 5.0;
        inputs[14] = 1.0;
        inputs[15] = 7.0;
        let out = evaluate_tree(&cfg, &instr, &inputs, 0, Precision::F64).unwrap();
        assert_eq!(out.levels.len(), 1);
        assert_eq!(out.value(0, 0), 10.0);
        assert_eq!(out.value(0, 7), 8.0);
    }

    #[test]
    fn geometry_mismatches_are_rejected() {
        let cfg = ProcessorConfig::ptree();
        let instr = tree_instr(&cfg);
        assert!(evaluate_tree(&cfg, &instr, &[0.0; 4], 0, Precision::F64).is_err());
        let mut bad = instr;
        bad.pe_ops.pop();
        assert!(evaluate_tree(&cfg, &bad, &[0.0; 16], 0, Precision::F64).is_err());
    }
}
