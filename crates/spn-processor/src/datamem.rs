//! Vector-addressed data memory.
//!
//! The paper's data memory exchanges whole rows with the register file: one
//! address moves one word per register bank (32 words) at a time.  This keeps
//! the memory interface regular — all irregular accesses are absorbed by the
//! banked register file.

use crate::config::ProcessorConfig;
use crate::error::ProcessorError;
use crate::Result;

/// The processor's data memory, organised as rows of one word per bank.
#[derive(Debug, Clone)]
pub struct DataMemory {
    rows: usize,
    width: usize,
    data: Vec<f64>,
    loads: u64,
    stores: u64,
}

impl DataMemory {
    /// Creates a zero-initialised data memory for `config`.
    pub fn new(config: &ProcessorConfig) -> Self {
        DataMemory::with_rows(config.data_memory_rows, config.total_banks())
    }

    /// Creates a data memory with an explicit row count.
    ///
    /// Programs whose inputs exceed the configured on-chip capacity are run
    /// against a proportionally larger backing memory; the interface (one row
    /// per transaction) and therefore the cycle counts are unchanged.
    pub fn with_rows(rows: usize, width: usize) -> Self {
        DataMemory {
            rows,
            width,
            data: vec![0.0; rows * width],
            loads: 0,
            stores: 0,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Words per row (= number of register banks).
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of row loads performed so far.
    pub fn load_count(&self) -> u64 {
        self.loads
    }

    /// Number of row stores performed so far.
    pub fn store_count(&self) -> u64 {
        self.stores
    }

    /// Clears contents and transaction counters, keeping the allocation
    /// (used between queries of a batched run).
    pub fn reset(&mut self) {
        self.data.fill(0.0);
        self.reset_counters();
    }

    /// Clears only the transaction counters.
    ///
    /// Used by the batched execution path when a following
    /// [`DataMemory::load_image`] overwrites the whole address range the
    /// program can reach, making a data zero-fill redundant — this keeps the
    /// per-query cost proportional to the program, not to the (possibly
    /// larger, reused) backing memory.
    pub fn reset_counters(&mut self) {
        self.loads = 0;
        self.stores = 0;
    }

    /// Initialises the memory contents from a flat image (row-major).
    ///
    /// # Errors
    ///
    /// Returns [`ProcessorError::MemoryOutOfRange`] when the image is larger
    /// than the memory.
    pub fn load_image(&mut self, image: &[f64]) -> Result<()> {
        if image.len() > self.data.len() {
            return Err(ProcessorError::MemoryOutOfRange {
                row: image.len() / self.width,
                rows: self.rows,
            });
        }
        self.data[..image.len()].copy_from_slice(image);
        Ok(())
    }

    fn check_row(&self, row: usize) -> Result<()> {
        if row >= self.rows {
            return Err(ProcessorError::MemoryOutOfRange {
                row,
                rows: self.rows,
            });
        }
        Ok(())
    }

    /// Reads row `row` (counted as one load transaction).
    ///
    /// # Errors
    ///
    /// Returns [`ProcessorError::MemoryOutOfRange`] for an invalid row.
    pub fn load_row(&mut self, row: usize) -> Result<&[f64]> {
        self.check_row(row)?;
        self.loads += 1;
        Ok(&self.data[row * self.width..(row + 1) * self.width])
    }

    /// Writes row `row` (counted as one store transaction).
    ///
    /// # Errors
    ///
    /// Returns [`ProcessorError::MemoryOutOfRange`] for an invalid row and a
    /// malformed-instruction error when `values` is not exactly one row wide.
    pub fn store_row(&mut self, row: usize, values: &[f64]) -> Result<()> {
        self.check_row(row)?;
        if values.len() != self.width {
            return Err(ProcessorError::MalformedInstruction {
                cycle: 0,
                reason: format!(
                    "store of {} words into a row of width {}",
                    values.len(),
                    self.width
                ),
            });
        }
        self.stores += 1;
        self.data[row * self.width..(row + 1) * self.width].copy_from_slice(values);
        Ok(())
    }

    /// Reads a single word without counting a transaction (used to fetch the
    /// program output after execution).
    pub fn peek(&self, row: usize, lane: usize) -> f64 {
        self.data[row * self.width + lane]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn image_round_trip() {
        let cfg = ProcessorConfig::ptree();
        let mut mem = DataMemory::new(&cfg);
        let image: Vec<f64> = (0..64).map(|i| i as f64).collect();
        mem.load_image(&image).unwrap();
        assert_eq!(mem.peek(0, 5), 5.0);
        assert_eq!(mem.peek(1, 0), 32.0);
        assert_eq!(mem.load_row(1).unwrap()[31], 63.0);
        assert_eq!(mem.load_count(), 1);
    }

    #[test]
    fn store_and_reload_row() {
        let cfg = ProcessorConfig::ptree();
        let mut mem = DataMemory::new(&cfg);
        let row: Vec<f64> = (0..32).map(|i| (i * 2) as f64).collect();
        mem.store_row(7, &row).unwrap();
        assert_eq!(mem.load_row(7).unwrap(), row.as_slice());
        assert_eq!(mem.store_count(), 1);
        assert_eq!(mem.load_count(), 1);
    }

    #[test]
    fn out_of_range_rows_are_rejected() {
        let cfg = ProcessorConfig::ptree();
        let mut mem = DataMemory::new(&cfg);
        assert!(mem.load_row(512).is_err());
        assert!(mem.store_row(9999, &vec![0.0; 32]).is_err());
        assert!(mem.load_image(&vec![0.0; 32 * 513]).is_err());
    }

    #[test]
    fn misshapen_store_is_rejected() {
        let cfg = ProcessorConfig::ptree();
        let mut mem = DataMemory::new(&cfg);
        assert!(mem.store_row(0, &[1.0, 2.0]).is_err());
    }

    #[test]
    fn geometry_matches_config() {
        let cfg = ProcessorConfig::ptree();
        let mem = DataMemory::new(&cfg);
        assert_eq!(mem.rows(), 512);
        assert_eq!(mem.width(), 32);
    }
}
