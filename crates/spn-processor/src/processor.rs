//! The cycle-accurate processor model.
//!
//! [`Processor::run`] executes a compiled [`Program`] instruction by
//! instruction.  Every structural rule of the architecture is enforced:
//!
//! * at most one read and one write per register bank per cycle,
//! * PE write-backs restricted to the banks reachable from the PE's position,
//! * per-level pipeline latency — a value written by a PE at level `l` of an
//!   instruction issued in cycle `t` commits at the end of cycle `t + l` and
//!   is readable from cycle `t + l + 1`,
//! * a single vectorised data-memory operation per cycle, sharing the
//!   register-file ports with everything else.
//!
//! Violations are reported as [`ProcessorError`]s rather than silently
//! producing wrong values, which turns the simulator into a verification
//! oracle for `spn-compiler`.

use crate::config::{PePosition, ProcessorConfig};
use crate::datamem::DataMemory;
use crate::error::ProcessorError;
use crate::isa::{Instruction, MemOp, PeOp, Program, ReadSel, ValueLocation};
use crate::perf::PerfReport;
use crate::regfile::RegisterFile;
use crate::trace::{NoTrace, TraceHook, TraceRecorder};
use crate::tree::evaluate_tree;
use crate::Result;

/// The outcome of executing a program on one input vector.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecutionResult {
    /// The SPN root value computed by the program.
    pub output: f64,
    /// The values of the program's export locations ([`Program::exports`]),
    /// in declaration order; empty for ordinary single-output programs.
    pub exports: Vec<f64>,
    /// Performance counters of the run.
    pub perf: PerfReport,
}

/// The outcome of executing a program over a batch of input vectors.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchExecution {
    /// One SPN root value per query, in batch order.
    pub outputs: Vec<f64>,
    /// Accumulated performance counters ([`PerfReport::queries`] passes).
    pub perf: PerfReport,
}

/// Reusable simulator storage for the execute-many half of the
/// compile-once / execute-many split.
///
/// Holds the register file, data memory, pipeline bookkeeping and the
/// data-memory image buffer, so repeated runs of one compiled [`Program`]
/// (e.g. over an evidence batch) allocate nothing per query.  Build one with
/// [`Processor::state_for`] and pass it to [`Processor::run_with`].
#[derive(Debug, Clone)]
pub struct SimState {
    regfile: RegisterFile,
    datamem: DataMemory,
    pending: Vec<PendingWrite>,
    image: Vec<f64>,
}

/// A write travelling through the PE pipeline, not yet visible to reads.
#[derive(Debug, Clone, Copy)]
struct PendingWrite {
    commit_cycle: u64,
    bank: usize,
    reg: usize,
    value: f64,
}

/// The SPN processor simulator.
#[derive(Debug, Clone)]
pub struct Processor {
    config: ProcessorConfig,
}

impl Processor {
    /// Creates a processor for `config`.
    ///
    /// # Errors
    ///
    /// Returns [`ProcessorError::InvalidConfig`] when the configuration is
    /// inconsistent.
    pub fn new(config: ProcessorConfig) -> Result<Self> {
        config.validate()?;
        Ok(Processor { config })
    }

    /// The configuration this processor simulates.
    pub fn config(&self) -> &ProcessorConfig {
        &self.config
    }

    /// Builds reusable simulator storage sized for `program`.
    ///
    /// The data memory is sized to the rows the program actually uses (the
    /// row-by-row interface and therefore the cycle counts are unchanged —
    /// see [`DataMemory::with_rows`]): a compiled program never addresses
    /// beyond `memory_rows_used`, and the tight sizing keeps the per-query
    /// reset of a batched run proportional to the program instead of the
    /// full on-chip capacity.  Oversized programs get a proportionally
    /// larger backing memory the same way.
    pub fn state_for(&self, program: &Program) -> SimState {
        let rows = program.memory_rows_used.max(1);
        SimState {
            regfile: RegisterFile::new(&self.config),
            datamem: DataMemory::with_rows(rows, self.config.total_banks()),
            pending: Vec::new(),
            image: Vec::new(),
        }
    }

    /// Executes `program` on the input values of one inference pass.
    ///
    /// `inputs` must contain one value per entry of the program's input
    /// layout (see [`Program::input_layout`]); they are placed into the data
    /// memory before the first cycle.
    ///
    /// Convenience wrapper that allocates fresh simulator storage; repeated
    /// runs should reuse a [`SimState`] via [`Processor::run_with`] or go
    /// through [`Processor::run_batch`].
    ///
    /// # Errors
    ///
    /// Returns a [`ProcessorError`] when the program violates a structural
    /// rule of the architecture, reads a value still in flight, or does not
    /// match this processor's configuration.
    pub fn run(&self, program: &Program, inputs: &[f64]) -> Result<ExecutionResult> {
        let mut state = self.state_for(program);
        self.run_with(program, inputs, &mut state)
    }

    /// Executes `program` on one input vector, reusing `state`'s storage.
    ///
    /// `state` is replaced by a freshly sized one when its geometry does not
    /// fit `program` (smaller data memory, or banks/registers from a
    /// different configuration), so a cached state can be carried across
    /// programs safely.
    ///
    /// # Errors
    ///
    /// Returns a [`ProcessorError`] as for [`Processor::run`].
    pub fn run_with(
        &self,
        program: &Program,
        inputs: &[f64],
        state: &mut SimState,
    ) -> Result<ExecutionResult> {
        self.run_with_hook(program, inputs, state, &mut NoTrace)
    }

    /// [`Processor::run_with`] with a cycle-accurate trace recorder attached:
    /// every PE operation (opcode, operands, result, instruction occupancy)
    /// and memory row operation is appended to `recorder`.
    ///
    /// The untraced path is not affected by the existence of this method —
    /// the run loop is generic over [`TraceHook`] and monomorphizes to the
    /// hook-free code for [`NoTrace`].
    ///
    /// # Errors
    ///
    /// As for [`Processor::run_with`].
    pub fn run_traced(
        &self,
        program: &Program,
        inputs: &[f64],
        state: &mut SimState,
        recorder: &mut TraceRecorder,
    ) -> Result<ExecutionResult> {
        self.run_with_hook(program, inputs, state, recorder)
    }

    /// The generic run loop behind [`Processor::run_with`] and
    /// [`Processor::run_traced`]: executes `program` on one input vector,
    /// reporting every cycle's PE and memory activity to `hook`.
    pub fn run_with_hook<H: TraceHook>(
        &self,
        program: &Program,
        inputs: &[f64],
        state: &mut SimState,
        hook: &mut H,
    ) -> Result<ExecutionResult> {
        if program.config != self.config {
            return Err(ProcessorError::InvalidConfig {
                reason: format!(
                    "program compiled for `{}` run on `{}`",
                    program.config.name, self.config.name
                ),
            });
        }
        if state.datamem.rows() < program.memory_rows_used.max(1)
            || state.datamem.width() != self.config.total_banks()
            || state.regfile.banks() != self.config.total_banks()
            || state.regfile.regs_per_bank() != self.config.regs_per_bank
        {
            *state = self.state_for(program);
        }
        program.write_memory_image(inputs, &mut state.image)?;
        state.regfile.reset();
        // The image covers every row the program may address
        // (`memory_rows_used` rows, zero-filled where unspecified), so
        // loading it re-initialises the reachable address space without
        // zeroing a possibly larger reused backing memory.  Memory
        // operations beyond `memory_rows_used` are rejected per instruction
        // below, so stale rows of a reused state are never observable.
        state.datamem.reset_counters();
        state.datamem.load_image(&state.image)?;
        state.pending.clear();
        let regfile = &mut state.regfile;
        let datamem = &mut state.datamem;
        let pending = &mut state.pending;

        let mut perf = PerfReport {
            platform: self.config.name.clone(),
            queries: 1,
            source_ops: program.num_source_ops as u64,
            instructions: program.len() as u64,
            ..Default::default()
        };
        let mut last_commit: u64 = 0;

        let rows_used = program.memory_rows_used;
        for (cycle, instr) in program.instructions.iter().enumerate() {
            let cycle = cycle as u64;
            Self::commit_ready(pending, regfile, cycle)?;
            self.execute_instruction(
                instr,
                cycle,
                rows_used,
                program.pe_precision,
                regfile,
                datamem,
                pending,
                &mut perf,
                &mut last_commit,
                hook,
            )?;
        }
        // Drain the pipeline: commit everything that is still in flight.
        Self::commit_ready(pending, regfile, u64::MAX)?;

        perf.cycles = (program.len() as u64).max(last_commit + 1);
        perf.stall_cycles = program.stall_instructions() as u64;
        perf.memory_loads = datamem.load_count();
        perf.memory_stores = datamem.store_count();

        let peek = |loc: ValueLocation| -> Result<f64> {
            Ok(match loc {
                ValueLocation::Register { bank, reg } => regfile.peek(bank as usize, reg as usize),
                ValueLocation::Memory { row, lane } => {
                    Self::check_program_row(row as usize, rows_used)?;
                    datamem.peek(row as usize, lane as usize)
                }
            })
        };
        let output = peek(program.output)?;
        let exports = program
            .exports
            .iter()
            .map(|&loc| peek(loc))
            .collect::<Result<Vec<f64>>>()?;
        Ok(ExecutionResult {
            output,
            exports,
            perf,
        })
    }

    /// Executes `program` over a dense batch of input vectors through one
    /// simulator instance, accumulating the performance counters.
    ///
    /// `flat_inputs` holds `queries` consecutive input vectors (query-major,
    /// each one input-layout entry long) — the layout produced by
    /// `spn_core::batch::InputRecipe::fill_batch`.  The compiled program is
    /// loaded once; only the data-memory image is rebuilt per query, which is
    /// the paper's deployment model (compile at build time, stream evidence
    /// at run time).
    ///
    /// # Errors
    ///
    /// Returns [`ProcessorError::InputMismatch`] when `flat_inputs` is not
    /// exactly `queries` input vectors long, and any [`ProcessorError`] a
    /// single run can produce.
    pub fn run_batch(
        &self,
        program: &Program,
        flat_inputs: &[f64],
        queries: usize,
    ) -> Result<BatchExecution> {
        let mut state = self.state_for(program);
        self.run_batch_with(program, flat_inputs, queries, &mut state)
    }

    /// [`Processor::run_batch`] with caller-owned simulator storage, so
    /// repeated batches through one compiled program allocate nothing.
    ///
    /// `state` is replaced by a freshly sized one when it does not fit
    /// `program` (smaller data memory or a different bank geometry).
    ///
    /// # Errors
    ///
    /// As for [`Processor::run_batch`].
    pub fn run_batch_with(
        &self,
        program: &Program,
        flat_inputs: &[f64],
        queries: usize,
        state: &mut SimState,
    ) -> Result<BatchExecution> {
        let per_query = program.input_layout.len();
        if flat_inputs.len() != queries * per_query {
            return Err(ProcessorError::InputMismatch {
                expected: queries * per_query,
                got: flat_inputs.len(),
            });
        }
        let mut outputs = Vec::with_capacity(queries);
        let mut perf = PerfReport::default();
        for q in 0..queries {
            let inputs = &flat_inputs[q * per_query..(q + 1) * per_query];
            let run = self.run_with(program, inputs, state)?;
            outputs.push(run.output);
            perf.merge(&run.perf);
        }
        if perf.platform.is_empty() {
            perf.platform.clone_from(&self.config.name);
        }
        Ok(BatchExecution { outputs, perf })
    }

    /// Applies all pending writes whose commit cycle is strictly before
    /// `cycle` (they become visible to reads of `cycle`).
    fn commit_ready(
        pending: &mut Vec<PendingWrite>,
        regfile: &mut RegisterFile,
        cycle: u64,
    ) -> Result<()> {
        let mut ready: Vec<PendingWrite> = Vec::new();
        pending.retain(|w| {
            if w.commit_cycle < cycle {
                ready.push(*w);
                false
            } else {
                true
            }
        });
        ready.sort_by_key(|w| w.commit_cycle);
        for w in ready {
            regfile.write(w.bank, w.reg, w.value, w.commit_cycle)?;
        }
        Ok(())
    }

    /// Checks that a memory operation stays inside the program's declared
    /// address space (`memory_rows_used`), so reused simulator storage can
    /// never leak a previous program's rows.
    fn check_program_row(row: usize, rows_used: usize) -> Result<()> {
        if row >= rows_used {
            return Err(ProcessorError::MemoryOutOfRange {
                row,
                rows: rows_used,
            });
        }
        Ok(())
    }

    /// Checks that `(bank, reg)` has no write still in flight at `cycle`.
    fn check_no_inflight(
        pending: &[PendingWrite],
        bank: usize,
        reg: usize,
        cycle: u64,
    ) -> Result<()> {
        if pending
            .iter()
            .any(|w| w.bank == bank && w.reg == reg && w.commit_cycle >= cycle)
        {
            return Err(ProcessorError::ReadBeforeWrite { cycle, bank, reg });
        }
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    fn execute_instruction<H: TraceHook>(
        &self,
        instr: &Instruction,
        cycle: u64,
        rows_used: usize,
        pe_precision: crate::precision::Precision,
        regfile: &mut RegisterFile,
        datamem: &mut DataMemory,
        pending: &mut Vec<PendingWrite>,
        perf: &mut PerfReport,
        last_commit: &mut u64,
        hook: &mut H,
    ) -> Result<()> {
        if instr.trees.len() != self.config.num_trees {
            return Err(ProcessorError::MalformedInstruction {
                cycle,
                reason: format!(
                    "instruction configures {} trees, processor has {}",
                    instr.trees.len(),
                    self.config.num_trees
                ),
            });
        }
        // 1. A memory load enqueues its row write first so that reads of the
        //    destination register in the same cycle are flagged as hazards.
        if let MemOp::Load { row, reg } = instr.mem {
            Self::check_program_row(row as usize, rows_used)?;
            if H::ENABLED {
                hook.on_mem(cycle, false, row, reg);
            }
            let values = datamem.load_row(row as usize)?.to_vec();
            for (bank, value) in values.into_iter().enumerate() {
                *last_commit = (*last_commit).max(cycle);
                pending.push(PendingWrite {
                    commit_cycle: cycle,
                    bank,
                    reg: reg as usize,
                    value,
                });
            }
        }

        // 2. Resolve crossbar reads and evaluate every tree.
        let occupancy = if H::ENABLED {
            instr
                .trees
                .iter()
                .flat_map(|t| t.pe_ops.iter())
                .filter(|&&op| op != PeOp::Nop)
                .count() as u32
        } else {
            0
        };
        let mut tree_outputs = Vec::with_capacity(instr.trees.len());
        for (tree_idx, tree_instr) in instr.trees.iter().enumerate() {
            let mut values = Vec::with_capacity(tree_instr.reads.len());
            if tree_instr.reads.len() != self.config.tree_inputs_per_tree() {
                return Err(ProcessorError::MalformedInstruction {
                    cycle,
                    reason: format!(
                        "tree has {} read selections, expected {}",
                        tree_instr.reads.len(),
                        self.config.tree_inputs_per_tree()
                    ),
                });
            }
            for sel in &tree_instr.reads {
                let v = match *sel {
                    ReadSel::None | ReadSel::Zero => 0.0,
                    ReadSel::One => 1.0,
                    ReadSel::Reg { bank, reg } => {
                        let (bank, reg) = (bank as usize, reg as usize);
                        Self::check_no_inflight(pending, bank, reg, cycle)?;
                        perf.operand_reads += 1;
                        regfile.read(bank, reg, cycle)?
                    }
                };
                values.push(v);
            }
            let outputs = evaluate_tree(&self.config, tree_instr, &values, cycle, pe_precision)?;
            if H::ENABLED {
                // Reconstruct each active PE's operands: level 0 reads the
                // crossbar values, level l > 0 reads the level below.
                for level in 0..self.config.tree_levels {
                    for pe in 0..self.config.pes_at_level(level) {
                        let flat = crate::isa::TreeInstr::pe_flat_index(&self.config, level, pe);
                        let op = tree_instr.pe_ops[flat];
                        if op == PeOp::Nop {
                            continue;
                        }
                        let (a, b) = if level == 0 {
                            (values[2 * pe], values[2 * pe + 1])
                        } else {
                            let below = &outputs.levels[level - 1];
                            (below[2 * pe], below[2 * pe + 1])
                        };
                        hook.on_pe(
                            cycle,
                            tree_idx,
                            level,
                            pe,
                            op,
                            a,
                            b,
                            outputs.value(level, pe),
                            occupancy,
                        );
                    }
                }
            }
            tree_outputs.push(outputs);
        }

        // 3. Queue PE write-backs with their pipeline latency.
        for (tree_idx, tree_instr) in instr.trees.iter().enumerate() {
            for w in &tree_instr.writes {
                let level = w.level as usize;
                let pe = w.pe as usize;
                if level >= self.config.tree_levels || pe >= self.config.pes_at_level(level) {
                    return Err(ProcessorError::MalformedInstruction {
                        cycle,
                        reason: format!("write from non-existent PE level {level} index {pe}"),
                    });
                }
                let position = PePosition {
                    tree: tree_idx,
                    level,
                    index: pe,
                };
                let bank = w.bank as usize;
                if !self.config.can_write(position, bank) {
                    return Err(ProcessorError::IllegalWriteBank {
                        cycle,
                        tree: tree_idx,
                        level,
                        pe,
                        bank,
                    });
                }
                if w.reg as usize >= self.config.regs_per_bank {
                    return Err(ProcessorError::MalformedInstruction {
                        cycle,
                        reason: format!("write to register {} out of range", w.reg),
                    });
                }
                let commit_cycle = cycle + self.config.commit_latency(level);
                *last_commit = (*last_commit).max(commit_cycle);
                perf.writebacks += 1;
                pending.push(PendingWrite {
                    commit_cycle,
                    bank,
                    reg: w.reg as usize,
                    value: tree_outputs[tree_idx].value(level, pe),
                });
            }
            perf.issued_ops += tree_instr.arithmetic_ops() as u64;
        }

        // 4. Intra-bank copies (read and write the same bank this cycle).
        for copy in &instr.copies {
            let bank = copy.bank as usize;
            Self::check_no_inflight(pending, bank, copy.src as usize, cycle)?;
            let value = regfile.read(bank, copy.src as usize, cycle)?;
            perf.operand_reads += 1;
            perf.writebacks += 1;
            *last_commit = (*last_commit).max(cycle);
            pending.push(PendingWrite {
                commit_cycle: cycle,
                bank,
                reg: copy.dst as usize,
                value,
            });
        }

        // 5. A store reads the register file after all other reads of the
        //    cycle have been accounted for.
        if let MemOp::Store { row, reg } = instr.mem {
            Self::check_program_row(row as usize, rows_used)?;
            if H::ENABLED {
                hook.on_mem(cycle, true, row, reg);
            }
            for bank in 0..self.config.total_banks() {
                Self::check_no_inflight(pending, bank, reg as usize, cycle)?;
            }
            let values = regfile.read_row(reg as usize, cycle)?;
            perf.operand_reads += values.len() as u64;
            datamem.store_row(row as usize, &values)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{CopyCmd, InputSlot, PeOp, TreeInstr, WriteCmd};

    fn cfg() -> ProcessorConfig {
        ProcessorConfig::ptree()
    }

    /// Builds a program that loads 4 values (a, b, c, d) from memory row 0
    /// and computes (a + b) × (c + d) on one tree pass, writing the result to
    /// bank 0, register 1.
    fn sum_of_products_program() -> Program {
        let config = cfg();
        let mut load = Instruction::nop(&config);
        load.mem = MemOp::Load { row: 0, reg: 0 };

        let mut compute = Instruction::nop(&config);
        {
            let tree = &mut compute.trees[0];
            // Inputs 0..4 read banks 0..4 (lane = bank for row loads).
            for (i, sel) in tree.reads.iter_mut().enumerate().take(4) {
                *sel = ReadSel::Reg {
                    bank: i as u16,
                    reg: 0,
                };
            }
            tree.pe_ops[TreeInstr::pe_flat_index(&config, 0, 0)] = PeOp::Add;
            tree.pe_ops[TreeInstr::pe_flat_index(&config, 0, 1)] = PeOp::Add;
            tree.pe_ops[TreeInstr::pe_flat_index(&config, 1, 0)] = PeOp::Mul;
            tree.writes.push(WriteCmd {
                level: 1,
                pe: 0,
                bank: 0,
                reg: 1,
            });
        }

        Program {
            config,
            instructions: vec![load, compute],
            input_layout: (0..4).map(|lane| InputSlot { row: 0, lane }).collect(),
            memory_rows_used: 1,
            output: ValueLocation::Register { bank: 0, reg: 1 },
            exports: Vec::new(),
            num_source_ops: 3,
            pe_precision: crate::precision::Precision::F64,
        }
    }

    #[test]
    fn computes_sum_of_products() {
        let program = sum_of_products_program();
        let proc = Processor::new(cfg()).unwrap();
        let result = proc.run(&program, &[2.0, 3.0, 4.0, 5.0]).unwrap();
        assert_eq!(result.output, (2.0 + 3.0) * (4.0 + 5.0));
        assert_eq!(result.perf.source_ops, 3);
        assert_eq!(result.perf.issued_ops, 3);
        assert_eq!(result.perf.memory_loads, 1);
        // Load cycle + compute cycle + one level of pipeline latency.
        assert_eq!(result.perf.cycles, 3);
        assert!(result.perf.ops_per_cycle() > 0.9);
    }

    #[test]
    fn batched_run_reuses_state_and_accumulates_perf() {
        let program = sum_of_products_program();
        let proc = Processor::new(cfg()).unwrap();
        // Three queries, flattened query-major.
        let flat: Vec<f64> = [
            [2.0, 3.0, 4.0, 5.0],
            [1.0, 1.0, 1.0, 1.0],
            [0.5, 0.5, 2.0, 2.0],
        ]
        .concat();
        let batch = proc.run_batch(&program, &flat, 3).unwrap();
        assert_eq!(batch.outputs, vec![45.0, 4.0, 4.0]);
        assert_eq!(batch.perf.queries, 3);
        let single = proc.run(&program, &flat[..4]).unwrap();
        assert_eq!(batch.perf.cycles, 3 * single.perf.cycles);
        assert_eq!(batch.perf.source_ops, 3 * single.perf.source_ops);
        assert_eq!(batch.perf.memory_loads, 3 * single.perf.memory_loads);
        // Mis-sized flat input is rejected.
        assert!(matches!(
            proc.run_batch(&program, &flat[..10], 3),
            Err(ProcessorError::InputMismatch { .. })
        ));
    }

    #[test]
    fn state_reuse_is_equivalent_to_fresh_state() {
        let program = sum_of_products_program();
        let proc = Processor::new(cfg()).unwrap();
        let mut state = proc.state_for(&program);
        let a = proc
            .run_with(&program, &[2.0, 3.0, 4.0, 5.0], &mut state)
            .unwrap();
        // A second, different query through the same state must not see any
        // residue of the first.
        let b = proc
            .run_with(&program, &[1.0, 0.0, 1.0, 0.0], &mut state)
            .unwrap();
        assert_eq!(a.output, 45.0);
        assert_eq!(b.output, 1.0);
        assert_eq!(
            b.perf,
            proc.run(&program, &[1.0, 0.0, 1.0, 0.0]).unwrap().perf
        );
    }

    #[test]
    fn rejects_mismatched_input_count() {
        let program = sum_of_products_program();
        let proc = Processor::new(cfg()).unwrap();
        assert!(matches!(
            proc.run(&program, &[1.0, 2.0]),
            Err(ProcessorError::InputMismatch { .. })
        ));
    }

    #[test]
    fn rejects_wrong_configuration() {
        let program = sum_of_products_program();
        let proc = Processor::new(ProcessorConfig::pvect()).unwrap();
        assert!(matches!(
            proc.run(&program, &[1.0; 4]),
            Err(ProcessorError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn detects_read_before_write_hazard() {
        // Same as the reference program but the compute instruction reads the
        // loaded row in the same cycle as the load (illegal: the load commits
        // at the end of the cycle).
        let mut program = sum_of_products_program();
        let compute = program.instructions.remove(1);
        program.instructions[0].trees = compute.trees;
        let proc = Processor::new(cfg()).unwrap();
        assert!(matches!(
            proc.run(&program, &[1.0; 4]),
            Err(ProcessorError::ReadBeforeWrite { .. })
        ));
    }

    #[test]
    fn detects_read_port_conflict() {
        let mut program = sum_of_products_program();
        // Make two tree inputs read the same bank in the compute cycle.
        program.instructions[1].trees[0].reads[1] = ReadSel::Reg { bank: 0, reg: 0 };
        let proc = Processor::new(cfg()).unwrap();
        assert!(matches!(
            proc.run(&program, &[1.0; 4]),
            Err(ProcessorError::ReadPortConflict { .. })
        ));
    }

    #[test]
    fn detects_illegal_write_bank() {
        let mut program = sum_of_products_program();
        // Level-1 PE 0 of tree 0 can write banks 0..4 only; bank 12 is illegal.
        program.instructions[1].trees[0].writes[0].bank = 12;
        let proc = Processor::new(cfg()).unwrap();
        assert!(matches!(
            proc.run(&program, &[1.0; 4]),
            Err(ProcessorError::IllegalWriteBank { .. })
        ));
    }

    #[test]
    fn detects_write_port_conflict() {
        let mut program = sum_of_products_program();
        // Add a second write committing to bank 0 in the same cycle: leaf PE 0
        // (level 0) commits one cycle earlier, so use another level-1 write by
        // making PE level 1 index 0 write twice... instead write from leaf PE 0
        // in the *next* instruction so commits collide at the same cycle.
        let config = program.config.clone();
        let mut extra = Instruction::nop(&config);
        extra.trees[0].pe_ops[0] = PeOp::Add;
        extra.trees[0].reads[0] = ReadSel::One;
        extra.trees[0].reads[1] = ReadSel::One;
        extra.trees[0].writes.push(WriteCmd {
            level: 0,
            pe: 0,
            bank: 0,
            reg: 5,
        });
        // The level-1 write of instruction 1 commits at cycle 2; this leaf
        // write issued at cycle 2 also commits at cycle 2 on bank 0.
        program.instructions.push(extra);
        let proc = Processor::new(cfg()).unwrap();
        assert!(matches!(
            proc.run(&program, &[1.0; 4]),
            Err(ProcessorError::WritePortConflict { .. })
        ));
    }

    #[test]
    fn copies_move_values_within_a_bank() {
        let config = cfg();
        let mut load = Instruction::nop(&config);
        load.mem = MemOp::Load { row: 0, reg: 0 };
        let mut copy = Instruction::nop(&config);
        copy.copies.push(CopyCmd {
            bank: 2,
            src: 0,
            dst: 7,
        });
        let program = Program {
            config,
            instructions: vec![load, copy],
            input_layout: vec![InputSlot { row: 0, lane: 2 }],
            memory_rows_used: 1,
            output: ValueLocation::Register { bank: 2, reg: 7 },
            exports: Vec::new(),
            num_source_ops: 0,
            pe_precision: crate::precision::Precision::F64,
        };
        let proc = Processor::new(cfg()).unwrap();
        let result = proc.run(&program, &[42.0]).unwrap();
        assert_eq!(result.output, 42.0);
    }

    #[test]
    fn store_writes_back_to_memory() {
        let config = cfg();
        let mut load = Instruction::nop(&config);
        load.mem = MemOp::Load { row: 0, reg: 0 };
        let mut store = Instruction::nop(&config);
        store.mem = MemOp::Store { row: 1, reg: 0 };
        let program = Program {
            config,
            instructions: vec![load, store],
            input_layout: vec![InputSlot { row: 0, lane: 9 }],
            memory_rows_used: 2,
            output: ValueLocation::Memory { row: 1, lane: 9 },
            exports: Vec::new(),
            num_source_ops: 0,
            pe_precision: crate::precision::Precision::F64,
        };
        let proc = Processor::new(cfg()).unwrap();
        let result = proc.run(&program, &[7.5]).unwrap();
        assert_eq!(result.output, 7.5);
        assert_eq!(result.perf.memory_stores, 1);
    }

    #[test]
    fn pvect_configuration_executes_single_level_ops() {
        let config = ProcessorConfig::pvect();
        let mut load = Instruction::nop(&config);
        load.mem = MemOp::Load { row: 0, reg: 0 };
        let mut compute = Instruction::nop(&config);
        compute.trees[0].reads[0] = ReadSel::Reg { bank: 0, reg: 0 };
        compute.trees[0].reads[1] = ReadSel::Reg { bank: 1, reg: 0 };
        compute.trees[0].pe_ops[0] = PeOp::Mul;
        compute.trees[0].writes.push(WriteCmd {
            level: 0,
            pe: 0,
            bank: 1,
            reg: 3,
        });
        let program = Program {
            config: config.clone(),
            instructions: vec![load, compute],
            input_layout: vec![InputSlot { row: 0, lane: 0 }, InputSlot { row: 0, lane: 1 }],
            memory_rows_used: 1,
            output: ValueLocation::Register { bank: 1, reg: 3 },
            exports: Vec::new(),
            num_source_ops: 1,
            pe_precision: crate::precision::Precision::F64,
        };
        let proc = Processor::new(config).unwrap();
        let result = proc.run(&program, &[6.0, 7.0]).unwrap();
        assert_eq!(result.output, 42.0);
    }
}
