//! The custom VLIW instruction set of the SPN processor.
//!
//! One [`Instruction`] configures the whole datapath for one clock cycle:
//! the crossbar read selections and PE opcodes of every tree, the register
//! write-backs of PE outputs, optional intra-bank register copies, and at
//! most one vectorised data-memory operation.
//!
//! A [`Program`] couples the instruction stream with the data-memory layout
//! of the program inputs (indicator values and parameters of the flattened
//! SPN) and the location where the result can be found after the final
//! cycle, so the same program can be re-run for different evidence by
//! rebuilding the input image only.

use serde::{Deserialize, Serialize};

use crate::config::ProcessorConfig;
use crate::precision::Precision;

/// Source selection for one crossbar-fed input of a PE tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum ReadSel {
    /// The input is unused this cycle (drives zero).
    #[default]
    None,
    /// Read register `reg` of global bank `bank`.
    Reg {
        /// Global bank index.
        bank: u16,
        /// Register index within the bank.
        reg: u16,
    },
    /// Drive the constant `0.0` (does not use a read port).
    Zero,
    /// Drive the constant `1.0` (does not use a read port).
    One,
}

/// Operation performed by one processing element.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum PeOp {
    /// The PE is idle; its output is zero.
    #[default]
    Nop,
    /// Output = left input + right input.
    Add,
    /// Output = left input × right input.
    Mul,
    /// Output = max(left input, right input) — sum nodes of max-product
    /// (MAP/MPE) programs.
    Max,
    /// Output = log-sum-exp of the inputs (`ln(e^a + e^b)`) — sum nodes of
    /// log-domain programs, where products are executed as `Add` and
    /// probability zero is `-inf`.
    Lse,
    /// Output = `1.0` when left input < right input, else `0.0` — the
    /// sampler comparator (a uniform draw against a CDF threshold, the core
    /// step of a Knuth-Yao-style discrete sampler PE).  Non-commutative:
    /// the left input is the draw, the right the threshold.
    Sam,
    /// Output = left input (forwarding).
    PassA,
    /// Output = right input (forwarding).
    PassB,
}

impl PeOp {
    /// Returns `true` for `Add`/`Mul`/`Max`/`Lse`/`Sam`, the operations
    /// counted as SPN work.
    pub fn is_arithmetic(self) -> bool {
        matches!(
            self,
            PeOp::Add | PeOp::Mul | PeOp::Max | PeOp::Lse | PeOp::Sam
        )
    }
}

/// Write-back of one PE output to the register file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WriteCmd {
    /// Level of the producing PE (0 = crossbar-fed level).
    pub level: u8,
    /// Index of the producing PE within its level.
    pub pe: u8,
    /// Destination global bank.
    pub bank: u16,
    /// Destination register within the bank.
    pub reg: u16,
}

/// Per-cycle configuration of one PE tree.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct TreeInstr {
    /// Crossbar selections, one per tree input (`2 × leaf PEs` entries).
    pub reads: Vec<ReadSel>,
    /// PE opcodes, level-major: all level-0 PEs, then level 1, and so on.
    pub pe_ops: Vec<PeOp>,
    /// Register write-backs of PE outputs issued this cycle.
    pub writes: Vec<WriteCmd>,
}

impl TreeInstr {
    /// An all-idle tree instruction sized for `config`.
    pub fn nop(config: &ProcessorConfig) -> Self {
        let num_pes: usize = (0..config.tree_levels)
            .map(|l| config.pes_at_level(l))
            .sum();
        TreeInstr {
            reads: vec![ReadSel::None; config.tree_inputs_per_tree()],
            pe_ops: vec![PeOp::Nop; num_pes],
            writes: Vec::new(),
        }
    }

    /// Returns `true` when the tree does nothing this cycle.
    pub fn is_nop(&self) -> bool {
        self.writes.is_empty() && self.pe_ops.iter().all(|&op| op == PeOp::Nop)
    }

    /// Number of arithmetic (add/mul) operations issued on this tree.
    pub fn arithmetic_ops(&self) -> usize {
        self.pe_ops.iter().filter(|op| op.is_arithmetic()).count()
    }

    /// Flat index of the PE at `(level, index)` in [`TreeInstr::pe_ops`].
    pub fn pe_flat_index(config: &ProcessorConfig, level: usize, index: usize) -> usize {
        (0..level).map(|l| config.pes_at_level(l)).sum::<usize>() + index
    }
}

/// Copy of a register to another register of the same bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CopyCmd {
    /// Bank the copy happens in.
    pub bank: u16,
    /// Source register.
    pub src: u16,
    /// Destination register.
    pub dst: u16,
}

/// Vectorised data-memory operation (at most one per cycle).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum MemOp {
    /// No memory traffic this cycle.
    #[default]
    None,
    /// Load data-memory row `row` into register `reg` of every bank.
    Load {
        /// Source row address.
        row: u32,
        /// Destination register index (same in every bank).
        reg: u16,
    },
    /// Store register `reg` of every bank into data-memory row `row`.
    Store {
        /// Destination row address.
        row: u32,
        /// Source register index (same in every bank).
        reg: u16,
    },
}

/// One VLIW instruction: the datapath configuration for one clock cycle.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct Instruction {
    /// Per-tree configuration (one entry per PE tree).
    pub trees: Vec<TreeInstr>,
    /// Intra-bank register copies.
    pub copies: Vec<CopyCmd>,
    /// The cycle's data-memory operation.
    pub mem: MemOp,
}

impl Instruction {
    /// An instruction that does nothing, sized for `config`.
    pub fn nop(config: &ProcessorConfig) -> Self {
        Instruction {
            trees: (0..config.num_trees)
                .map(|_| TreeInstr::nop(config))
                .collect(),
            copies: Vec::new(),
            mem: MemOp::None,
        }
    }

    /// Returns `true` when the whole instruction is a no-op (a stall cycle).
    pub fn is_nop(&self) -> bool {
        self.trees.iter().all(TreeInstr::is_nop)
            && self.copies.is_empty()
            && self.mem == MemOp::None
    }

    /// Total arithmetic operations issued by this instruction.
    pub fn arithmetic_ops(&self) -> usize {
        self.trees.iter().map(TreeInstr::arithmetic_ops).sum()
    }
}

/// Where a value lives after the program has finished.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ValueLocation {
    /// In register `reg` of global bank `bank`.
    Register {
        /// Global bank index.
        bank: u16,
        /// Register index.
        reg: u16,
    },
    /// In lane `lane` of data-memory row `row`.
    Memory {
        /// Data-memory row.
        row: u32,
        /// Lane (bank column) within the row.
        lane: u16,
    },
}

/// Placement of one program input inside the data memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct InputSlot {
    /// Data-memory row holding the input.
    pub row: u32,
    /// Lane (bank column) within the row.
    pub lane: u16,
}

/// A compiled program for the SPN processor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Program {
    /// The configuration the program was compiled for.
    pub config: ProcessorConfig,
    /// Instruction stream, one instruction per cycle.
    pub instructions: Vec<Instruction>,
    /// Data-memory placement of each flattened-program input, indexed by the
    /// input's position in the originating `OpList`.
    pub input_layout: Vec<InputSlot>,
    /// Number of data-memory rows the program uses (inputs + spill space).
    pub memory_rows_used: usize,
    /// Where the SPN root value can be read after the last cycle.
    pub output: ValueLocation,
    /// Additional values readable after the last cycle, in a fixed order
    /// chosen at compile time.  Partitioned multi-core programs use these as
    /// the operands a core exports to later pipeline stages (see
    /// `spn_compiler::Compiler::compile_partitioned`); single-program
    /// compilation leaves the list empty.
    pub exports: Vec<ValueLocation>,
    /// Number of SPN arithmetic operations the program computes (for
    /// throughput reporting; equals the flattened op count).
    pub num_source_ops: usize,
    /// The emulated arithmetic format of the PE datapath: every PE result is
    /// quantized to this precision before write-back (see
    /// [`crate::tree::apply_pe`]).  [`Precision::F64`] executes bit-for-bit
    /// like the pre-existing full-precision simulator.
    pub pe_precision: Precision,
}

impl Program {
    /// Builds the initial data-memory image for the given input values.
    ///
    /// The returned vector has one `f64` per data-memory word
    /// (`memory_rows_used × total banks`), with uninitialised words set to
    /// zero.
    ///
    /// # Errors
    ///
    /// Returns [`crate::ProcessorError::InputMismatch`] when `inputs` does not
    /// have exactly one value per program input.
    pub fn build_memory_image(&self, inputs: &[f64]) -> crate::Result<Vec<f64>> {
        let mut image = Vec::new();
        self.write_memory_image(inputs, &mut image)?;
        Ok(image)
    }

    /// Builds the initial data-memory image into `image`, reusing its
    /// allocation (the batched execution path calls this once per query).
    ///
    /// # Errors
    ///
    /// Returns [`crate::ProcessorError::InputMismatch`] when `inputs` does not
    /// have exactly one value per program input.
    pub fn write_memory_image(&self, inputs: &[f64], image: &mut Vec<f64>) -> crate::Result<()> {
        if inputs.len() != self.input_layout.len() {
            return Err(crate::ProcessorError::InputMismatch {
                expected: self.input_layout.len(),
                got: inputs.len(),
            });
        }
        let width = self.config.total_banks();
        image.clear();
        image.resize(self.memory_rows_used * width, 0.0);
        for (value, slot) in inputs.iter().zip(&self.input_layout) {
            image[slot.row as usize * width + slot.lane as usize] = *value;
        }
        Ok(())
    }

    /// Number of instructions (= cycles of issue; the pipeline drain adds a
    /// few more cycles at run time).
    pub fn len(&self) -> usize {
        self.instructions.len()
    }

    /// Returns `true` when the program contains no instructions.
    pub fn is_empty(&self) -> bool {
        self.instructions.is_empty()
    }

    /// Number of stall (fully idle) instructions in the program.
    pub fn stall_instructions(&self) -> usize {
        self.instructions.iter().filter(|i| i.is_nop()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nop_instruction_is_detected() {
        let cfg = ProcessorConfig::ptree();
        let instr = Instruction::nop(&cfg);
        assert!(instr.is_nop());
        assert_eq!(instr.arithmetic_ops(), 0);
        assert_eq!(instr.trees.len(), 2);
        assert_eq!(instr.trees[0].reads.len(), 16);
        assert_eq!(instr.trees[0].pe_ops.len(), 15);
    }

    #[test]
    fn pe_flat_index_is_level_major() {
        let cfg = ProcessorConfig::ptree();
        assert_eq!(TreeInstr::pe_flat_index(&cfg, 0, 0), 0);
        assert_eq!(TreeInstr::pe_flat_index(&cfg, 0, 7), 7);
        assert_eq!(TreeInstr::pe_flat_index(&cfg, 1, 0), 8);
        assert_eq!(TreeInstr::pe_flat_index(&cfg, 2, 1), 13);
        assert_eq!(TreeInstr::pe_flat_index(&cfg, 3, 0), 14);
    }

    #[test]
    fn arithmetic_ops_counts_add_and_mul_only() {
        let cfg = ProcessorConfig::pvect();
        let mut instr = Instruction::nop(&cfg);
        instr.trees[0].pe_ops[0] = PeOp::Add;
        instr.trees[0].pe_ops[1] = PeOp::Mul;
        instr.trees[0].pe_ops[2] = PeOp::PassA;
        instr.trees[1].pe_ops[0] = PeOp::Mul;
        assert_eq!(instr.arithmetic_ops(), 3);
        assert!(!instr.is_nop());
    }

    #[test]
    fn memory_image_places_inputs() {
        let program = Program {
            config: ProcessorConfig::ptree(),
            instructions: vec![],
            input_layout: vec![
                InputSlot { row: 0, lane: 0 },
                InputSlot { row: 0, lane: 31 },
                InputSlot { row: 2, lane: 5 },
            ],
            memory_rows_used: 3,
            output: ValueLocation::Register { bank: 0, reg: 0 },
            exports: Vec::new(),
            num_source_ops: 0,
            pe_precision: Precision::F64,
        };
        let image = program.build_memory_image(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(image.len(), 3 * 32);
        assert_eq!(image[0], 1.0);
        assert_eq!(image[31], 2.0);
        assert_eq!(image[2 * 32 + 5], 3.0);
        assert!(program.build_memory_image(&[1.0]).is_err());
        assert!(program.is_empty());
        assert_eq!(program.stall_instructions(), 0);
    }

    #[test]
    fn default_read_sel_is_none() {
        assert_eq!(ReadSel::default(), ReadSel::None);
        assert_eq!(PeOp::default(), PeOp::Nop);
        assert_eq!(MemOp::default(), MemOp::None);
    }
}
