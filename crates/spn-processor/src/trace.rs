//! Cycle-accurate execution traces: the hook, the recorder and the differ.
//!
//! A perf-model regression that shifts one commit by one cycle is invisible
//! to end-value tests — the program still computes the right number.  The
//! trace subsystem makes such regressions testable bit-for-bit:
//!
//! * [`TraceHook`] is the observation interface of the simulator loop.  The
//!   loop is generic over the hook and [`NoTrace`] (the default) has
//!   `ENABLED = false` with empty inline methods, so the untraced path
//!   monomorphizes to exactly the pre-trace code — zero cost when off.
//! * [`TraceRecorder`] implements the hook by recording one [`TraceEvent`]
//!   per active PE and per memory operation, tagged with a core id and a
//!   cycle offset so multi-core schedules interleave on a global timeline.
//! * [`TraceRecorder::render`] serialises events into a stable line-based
//!   text format (operands and results as exact `f64` bit patterns), which
//!   is committed under `tests/golden_traces/` and re-generated with
//!   `cargo run -p spn-bench --bin record_traces -- --bless`.
//! * [`diff_traces`] compares two renderings and reports the **first
//!   divergent line** with its cycle and surrounding context, so a schedule
//!   change is pinpointed to the cycle where it first manifests.
//!
//! Trace line grammar (one event per line):
//!
//! ```text
//! Q core=<c> q=<n>                                  query marker
//! C<cycle:05> core=<c> t<tree> pe<level>.<index> <Op> occ=<n> \
//!     a=<hex64> b=<hex64> r=<hex64> # <r as decimal>
//! C<cycle:05> core=<c> mem <load|store> row=<r> reg=<g>
//! ```

use crate::isa::PeOp;

/// Observation interface of the simulator loop.
///
/// `ENABLED` gates every observation site: when `false` (the [`NoTrace`]
/// implementation) the compiler removes the recording code entirely, so
/// tracing costs nothing unless a recorder is attached.
pub trait TraceHook {
    /// Whether observation sites should record anything at all.
    const ENABLED: bool;

    /// One PE executed `op` on operands `a`, `b` producing `result` in
    /// `cycle`.  `occupancy` is the number of active (non-`Nop`) PEs across
    /// the whole instruction that issued this operation.
    #[allow(clippy::too_many_arguments)]
    fn on_pe(
        &mut self,
        cycle: u64,
        tree: usize,
        level: usize,
        index: usize,
        op: PeOp,
        a: f64,
        b: f64,
        result: f64,
        occupancy: u32,
    );

    /// A data-memory row operation issued in `cycle` (`store = false` for
    /// loads).
    fn on_mem(&mut self, cycle: u64, store: bool, row: u32, reg: u16);

    /// Events that follow belong to batch query `index` (multi-core runners
    /// call this once per query; the default does nothing).
    fn on_query(&mut self, _index: u64) {}

    /// The simulator's local cycle 0 now corresponds to global cycle `cycle`
    /// (multi-core runners call this to place pipeline stages on the global
    /// timeline; the default does nothing).
    fn rebase(&mut self, _cycle: u64) {}
}

/// The default hook: observes nothing, costs nothing.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoTrace;

impl TraceHook for NoTrace {
    const ENABLED: bool = false;

    #[inline(always)]
    fn on_pe(
        &mut self,
        _cycle: u64,
        _tree: usize,
        _level: usize,
        _index: usize,
        _op: PeOp,
        _a: f64,
        _b: f64,
        _result: f64,
        _occupancy: u32,
    ) {
    }

    #[inline(always)]
    fn on_mem(&mut self, _cycle: u64, _store: bool, _row: u32, _reg: u16) {}
}

/// One recorded observation.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// Start of a new query on this recorder's core.
    Query {
        /// Batch index of the query.
        index: u64,
    },
    /// A PE operation.
    Pe {
        /// Global cycle (recorder offset + simulator cycle).
        cycle: u64,
        /// Core the PE belongs to.
        core: u32,
        /// Tree within the core.
        tree: usize,
        /// PE level within the tree.
        level: usize,
        /// PE index within the level.
        index: usize,
        /// Opcode executed.
        op: PeOp,
        /// Left operand.
        a: f64,
        /// Right operand.
        b: f64,
        /// PE output (after precision quantization).
        result: f64,
        /// Active PEs in the issuing instruction.
        occupancy: u32,
    },
    /// A data-memory row operation.
    Mem {
        /// Global cycle.
        cycle: u64,
        /// Core issuing the operation.
        core: u32,
        /// `true` for stores, `false` for loads.
        store: bool,
        /// Row address.
        row: u32,
        /// Register index (same in every bank).
        reg: u16,
    },
}

/// Records per-cycle [`TraceEvent`]s for one core.
#[derive(Debug, Clone, Default)]
pub struct TraceRecorder {
    core: u32,
    cycle_offset: u64,
    events: Vec<TraceEvent>,
}

impl TraceRecorder {
    /// A recorder tagging its events with `core`, starting at cycle 0.
    pub fn new(core: u32) -> Self {
        TraceRecorder {
            core,
            cycle_offset: 0,
            events: Vec::new(),
        }
    }

    /// The core id this recorder tags events with.
    pub fn core(&self) -> u32 {
        self.core
    }

    /// Sets the offset added to simulator-local cycles, placing subsequent
    /// events on the global multi-core timeline (e.g. the scheduled start
    /// cycle of a pipeline stage).
    pub fn set_cycle_offset(&mut self, offset: u64) {
        self.cycle_offset = offset;
    }

    /// Records a query marker: events that follow belong to batch query
    /// `index`.
    pub fn mark_query(&mut self, index: u64) {
        self.events.push(TraceEvent::Query { index });
    }

    /// The recorded events in issue order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Returns `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Discards all recorded events (the core id and offset are kept).
    pub fn clear(&mut self) {
        self.events.clear();
    }

    /// Renders the recorded events into `out`, one line per event.
    pub fn render_into(&self, out: &mut String) {
        use std::fmt::Write;
        for event in &self.events {
            match *event {
                TraceEvent::Query { index } => {
                    let _ = writeln!(out, "Q core={} q={}", self.core, index);
                }
                TraceEvent::Pe {
                    cycle,
                    core,
                    tree,
                    level,
                    index,
                    op,
                    a,
                    b,
                    result,
                    occupancy,
                } => {
                    let _ = writeln!(
                        out,
                        "C{cycle:05} core={core} t{tree} pe{level}.{index} {op:?} \
                         occ={occupancy:02} a={:016x} b={:016x} r={:016x} # {result}",
                        a.to_bits(),
                        b.to_bits(),
                        result.to_bits(),
                    );
                }
                TraceEvent::Mem {
                    cycle,
                    core,
                    store,
                    row,
                    reg,
                } => {
                    let kind = if store { "store" } else { "load" };
                    let _ = writeln!(
                        out,
                        "C{cycle:05} core={core} mem {kind} row={row} reg={reg}"
                    );
                }
            }
        }
    }

    /// Renders the recorded events as trace text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }
}

impl TraceHook for TraceRecorder {
    const ENABLED: bool = true;

    fn on_pe(
        &mut self,
        cycle: u64,
        tree: usize,
        level: usize,
        index: usize,
        op: PeOp,
        a: f64,
        b: f64,
        result: f64,
        occupancy: u32,
    ) {
        self.events.push(TraceEvent::Pe {
            cycle: cycle + self.cycle_offset,
            core: self.core,
            tree,
            level,
            index,
            op,
            a,
            b,
            result,
            occupancy,
        });
    }

    fn on_mem(&mut self, cycle: u64, store: bool, row: u32, reg: u16) {
        self.events.push(TraceEvent::Mem {
            cycle: cycle + self.cycle_offset,
            core: self.core,
            store,
            row,
            reg,
        });
    }

    fn on_query(&mut self, index: u64) {
        self.mark_query(index);
    }

    fn rebase(&mut self, cycle: u64) {
        self.set_cycle_offset(cycle);
    }
}

/// First point where two trace texts disagree (see [`diff_traces`]).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceDivergence {
    /// 1-based line number of the first differing line.
    pub line: usize,
    /// Cycle parsed from the divergent line, when it carries one.
    pub cycle: Option<u64>,
    /// The golden line (`"<end of trace>"` when the golden text is shorter).
    pub golden: String,
    /// The actual line (`"<end of trace>"` when the actual text is shorter).
    pub actual: String,
    /// Up to three matching lines preceding the divergence, for context.
    pub context: Vec<String>,
}

impl std::fmt::Display for TraceDivergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.cycle {
            Some(cycle) => writeln!(
                f,
                "traces diverge at line {} (first divergent cycle {}):",
                self.line, cycle
            )?,
            None => writeln!(f, "traces diverge at line {}:", self.line)?,
        }
        for ctx in &self.context {
            writeln!(f, "    {ctx}")?;
        }
        writeln!(f, "  - golden: {}", self.golden)?;
        write!(f, "  + actual: {}", self.actual)
    }
}

/// Parses the cycle number of a `C<cycle> ...` trace line.
fn line_cycle(line: &str) -> Option<u64> {
    let rest = line.strip_prefix('C')?;
    let digits: &str = &rest[..rest.find(' ').unwrap_or(rest.len())];
    digits.parse().ok()
}

/// Compares two trace texts line by line and returns the first divergence,
/// or `None` when they are identical.
pub fn diff_traces(golden: &str, actual: &str) -> Option<TraceDivergence> {
    const END: &str = "<end of trace>";
    let mut golden_lines = golden.lines();
    let mut actual_lines = actual.lines();
    let mut context: Vec<String> = Vec::new();
    let mut line = 0usize;
    loop {
        line += 1;
        let g = golden_lines.next();
        let a = actual_lines.next();
        match (g, a) {
            (None, None) => return None,
            (g, a) if g == a => {
                if let Some(g) = g {
                    if context.len() == 3 {
                        context.remove(0);
                    }
                    context.push(g.to_string());
                }
            }
            (g, a) => {
                let golden = g.unwrap_or(END).to_string();
                let actual = a.unwrap_or(END).to_string();
                let cycle = line_cycle(&golden).or_else(|| line_cycle(&actual));
                return Some(TraceDivergence {
                    line,
                    cycle,
                    golden,
                    actual,
                    context,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_recorder() -> TraceRecorder {
        let mut rec = TraceRecorder::new(1);
        rec.mark_query(0);
        rec.on_mem(0, false, 3, 0);
        rec.on_pe(1, 0, 0, 2, PeOp::Mul, 0.5, 2.0, 1.0, 4);
        rec
    }

    #[test]
    fn renders_stable_lines() {
        let text = sample_recorder().render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "Q core=1 q=0");
        assert_eq!(lines[1], "C00000 core=1 mem load row=3 reg=0");
        assert_eq!(
            lines[2],
            format!(
                "C00001 core=1 t0 pe0.2 Mul occ=04 a={:016x} b={:016x} r={:016x} # 1",
                0.5f64.to_bits(),
                2.0f64.to_bits(),
                1.0f64.to_bits()
            )
        );
    }

    #[test]
    fn cycle_offset_shifts_recorded_cycles() {
        let mut rec = TraceRecorder::new(0);
        rec.set_cycle_offset(100);
        rec.on_mem(2, true, 1, 5);
        assert_eq!(rec.render(), "C00102 core=0 mem store row=1 reg=5\n");
        rec.clear();
        assert!(rec.is_empty());
        assert_eq!(rec.len(), 0);
    }

    #[test]
    fn identical_traces_do_not_diverge() {
        let text = sample_recorder().render();
        assert_eq!(diff_traces(&text, &text), None);
    }

    #[test]
    fn divergence_reports_first_differing_cycle_with_context() {
        let golden = sample_recorder().render();
        let mut other = sample_recorder();
        other.on_pe(2, 0, 1, 0, PeOp::Add, 1.0, 1.0, 2.0, 1);
        let longer = other.render();

        // Extra trailing line: divergence at the end of the golden text.
        let div = diff_traces(&golden, &longer).expect("must diverge");
        assert_eq!(div.line, 4);
        assert_eq!(div.golden, "<end of trace>");
        assert_eq!(div.cycle, Some(2));
        assert_eq!(div.context.len(), 3);

        // A changed operand diverges at its line, not at the end.
        let perturbed = golden.replace("row=3", "row=4");
        let div = diff_traces(&golden, &perturbed).expect("must diverge");
        assert_eq!(div.line, 2);
        assert_eq!(div.cycle, Some(0));
        assert!(div.to_string().contains("first divergent cycle 0"));
        assert!(div.to_string().contains("- golden"));
    }

    #[test]
    fn no_trace_is_a_zero_sized_no_op() {
        assert_eq!(std::mem::size_of::<NoTrace>(), 0);
        fn enabled<H: TraceHook>() -> bool {
            H::ENABLED
        }
        assert!(!enabled::<NoTrace>());
        assert!(enabled::<TraceRecorder>());
        let mut hook = NoTrace;
        hook.on_pe(0, 0, 0, 0, PeOp::Add, 1.0, 2.0, 3.0, 1);
        hook.on_mem(0, false, 0, 0);
    }
}
