//! Cycle-accurate simulator of the custom SPN processor.
//!
//! The processor accelerates sum-product network inference with three ideas
//! (sec. IV of the paper):
//!
//! 1. **Trees of processing elements** keep intermediate values inside the
//!    datapath instead of bouncing them through the register file.  A PE can
//!    add, multiply or forward one of its inputs, and its output is
//!    registered, so a tree of depth `L` is an `L`-stage pipeline.
//! 2. **A banked register file with a crossbar** feeds the tree inputs: any
//!    input can read any bank, but a bank serves at most one read per cycle.
//!    PEs write back to a private register file of their tree, and a PE at
//!    level `l` can only reach `2^(l+1)` specific banks.
//! 3. **A vector-only data memory** holds program inputs and spilled values:
//!    one address loads or stores a whole row (one word per bank) at once.
//!
//! The simulator executes the VLIW [`isa::Program`] produced by
//! `spn-compiler`, enforcing every structural rule (read/write port limits,
//! write connectivity, pipeline latencies, memory exclusivity) as hard
//! errors, and reports throughput in the paper's metric: SPN operations per
//! cycle ([`perf::PerfReport`]).
//!
//! Execution follows the compile-once / execute-many split: a program is
//! compiled once and then streamed over evidence.  [`Processor::run_batch`]
//! runs a whole batch of input vectors through one simulator instance
//! (reusable [`SimState`], no per-query allocation) and accumulates the
//! per-query counters into one batch-aware [`PerfReport`].
//!
//! The two configurations evaluated in the paper are available as presets:
//! [`ProcessorConfig::ptree`] (2 trees × 4 levels = 30 PEs) and
//! [`ProcessorConfig::pvect`] (the lowest PE level only, 16 PEs).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;

pub mod config;
pub mod datamem;
pub mod interconnect;
pub mod isa;
pub mod multicore;
pub mod perf;
pub mod precision;
pub mod processor;
pub mod regfile;
pub mod trace;
pub mod tree;

pub use config::{MultiCoreConfig, PePosition, ProcessorConfig};
pub use error::ProcessorError;
pub use interconnect::{InterconnectConfig, SharedMemoryConfig};
pub use isa::{Instruction, MemOp, PeOp, Program, ReadSel, TreeInstr, WriteCmd};
pub use multicore::{
    CoreProgram, MultiCoreBatch, MultiCoreProcessor, PartitionedProgram, TransferSource,
};
pub use perf::{CorePerf, MultiCorePerf, PerfReport};
pub use precision::Precision;
pub use processor::{BatchExecution, ExecutionResult, Processor, SimState};
pub use trace::{diff_traces, NoTrace, TraceDivergence, TraceEvent, TraceHook, TraceRecorder};

/// Convenience alias for results returned by this crate.
pub type Result<T, E = ProcessorError> = std::result::Result<T, E>;
