//! The N-core processor simulator.
//!
//! [`MultiCoreProcessor`] executes compiled programs on
//! [`MultiCoreConfig::cores`] identical single-core datapaths behind a
//! shared parameter memory and a linear interconnect
//! (see [`crate::interconnect`]).  Two execution modes cover the paper's
//! scaling story:
//!
//! * **Batch-sharded** ([`MultiCoreProcessor::run_batch_sharded`]): every
//!   core runs the *full* program on a contiguous shard of the evidence
//!   batch (the same shard split as `spn-platforms`' host-thread
//!   parallelism, so outputs are bit-for-bit equal to the single-core batch
//!   order).  Cores contend for the shared parameter memory: under lockstep
//!   wave arbitration core `c` pays `c / ports` extra cycles per memory
//!   transaction.  The makespan is the busiest core's cycle count.
//! * **Pipelined / partitioned** ([`MultiCoreProcessor::run_partitioned`]):
//!   the flattened op list is split into pipeline stages, one per core
//!   ([`PartitionedProgram`], produced by
//!   `spn_compiler::Compiler::compile_partitioned`), and intermediate
//!   operands travel over the interconnect.  Stage `j` starts once the
//!   last imported operand has arrived (`start_j = max_k(start_k +
//!   cycles_k + latency(k→j))`); queries then stream at an initiation
//!   interval of `max_j cycles_j`, so the batch makespan is
//!   `finish(first query) + (Q-1) × II`.
//!
//! Both modes return a [`MultiCoreBatch`] whose [`MultiCorePerf`] attributes
//! every makespan cycle of every core to compute, memory stalls,
//! interconnect stalls or idle time — an exact partition that
//! [`MultiCorePerf::check_accounting`] verifies.  Both modes also exist in
//! `_traced` variants that record per-cycle golden traces on the global
//! timeline (stage starts and steady-state offsets included), so a change
//! to any latency model moves trace rows and is caught at the first
//! divergent cycle by `crate::trace::diff_traces`.

use crate::config::MultiCoreConfig;
use crate::error::ProcessorError;
use crate::isa::Program;
use crate::perf::{CorePerf, MultiCorePerf, PerfReport};
use crate::processor::{Processor, SimState};
use crate::trace::{NoTrace, TraceHook, TraceRecorder};
use crate::Result;

/// Where one input slot of a pipeline stage's program gets its value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransferSource {
    /// Global program input `index` (filled from the evidence batch).
    Input(u32),
    /// Export `export` of the stage running on `core` (an earlier stage),
    /// delivered over the interconnect.
    Core {
        /// Producing core (must be an earlier stage).
        core: u32,
        /// Index into that stage's [`Program::exports`].
        export: u32,
    },
}

/// One pipeline stage of a partitioned program: the compiled sub-program a
/// core runs plus the source of each of its input slots.
#[derive(Debug, Clone, PartialEq)]
pub struct CoreProgram {
    /// The stage's compiled program (its [`Program::exports`] are the
    /// operands later stages import).
    pub program: Program,
    /// One entry per input slot of `program`, in input-layout order.
    pub inputs: Vec<TransferSource>,
}

/// A program partitioned into pipeline stages, one per core.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionedProgram {
    /// The stages in pipeline order; stage `j` runs on core `j`.
    pub stages: Vec<CoreProgram>,
    /// Number of global program inputs ([`TransferSource::Input`] indices
    /// range over `0..num_inputs`).
    pub num_inputs: usize,
}

impl PartitionedProgram {
    /// Validates the stage graph against a machine with `cores` cores.
    ///
    /// # Errors
    ///
    /// Returns [`ProcessorError::InvalidConfig`] when there are no stages or
    /// more stages than cores, when a transfer references a global input or
    /// an export out of range or a non-earlier core, or when a non-final
    /// stage feeds no later stage (its cycles could never overlap the
    /// pipeline, breaking cycle accounting).
    pub fn validate(&self, cores: usize) -> Result<()> {
        let fail = |reason: String| Err(ProcessorError::InvalidConfig { reason });
        if self.stages.is_empty() {
            return fail("partitioned program has no stages".to_string());
        }
        if self.stages.len() > cores {
            return fail(format!(
                "partitioned program has {} stages but the machine has {} cores",
                self.stages.len(),
                cores
            ));
        }
        let mut feeds_later = vec![false; self.stages.len()];
        for (j, stage) in self.stages.iter().enumerate() {
            if stage.inputs.len() != stage.program.input_layout.len() {
                return fail(format!(
                    "stage {j} declares {} transfer sources for {} program inputs",
                    stage.inputs.len(),
                    stage.program.input_layout.len()
                ));
            }
            for src in &stage.inputs {
                match *src {
                    TransferSource::Input(i) => {
                        if i as usize >= self.num_inputs {
                            return fail(format!(
                                "stage {j} reads global input {i} of {}",
                                self.num_inputs
                            ));
                        }
                    }
                    TransferSource::Core { core, export } => {
                        let k = core as usize;
                        if k >= j {
                            return fail(format!(
                                "stage {j} imports from core {k}, which is not an earlier stage"
                            ));
                        }
                        if export as usize >= self.stages[k].program.exports.len() {
                            return fail(format!(
                                "stage {j} imports export {export} of stage {k}, which has {}",
                                self.stages[k].program.exports.len()
                            ));
                        }
                        feeds_later[k] = true;
                    }
                }
            }
        }
        for (j, feeds) in feeds_later.iter().enumerate().take(self.stages.len() - 1) {
            if !feeds {
                return fail(format!("stage {j} feeds no later stage"));
            }
        }
        Ok(())
    }
}

/// The outcome of a multi-core batch execution.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiCoreBatch {
    /// One SPN root value per query, in batch order.
    pub outputs: Vec<f64>,
    /// Batch-level report: summed work counters, makespan cycles
    /// (see [`MultiCorePerf::merged`]).
    pub perf: PerfReport,
    /// Per-core cycle attribution.
    pub cores: MultiCorePerf,
}

/// The N-core SPN processor simulator.
#[derive(Debug, Clone)]
pub struct MultiCoreProcessor {
    config: MultiCoreConfig,
    core: Processor,
}

impl MultiCoreProcessor {
    /// Creates a multi-core processor for `config`.
    ///
    /// # Errors
    ///
    /// Returns [`ProcessorError::InvalidConfig`] when the configuration is
    /// inconsistent (zero cores, zero shared-memory ports, or an invalid
    /// per-core datapath).
    pub fn new(config: MultiCoreConfig) -> Result<Self> {
        config.validate()?;
        let core = Processor::new(config.core.clone())?;
        Ok(MultiCoreProcessor { config, core })
    }

    /// The configuration this processor simulates.
    pub fn config(&self) -> &MultiCoreConfig {
        &self.config
    }

    /// The single-core simulator each core runs.
    pub fn core(&self) -> &Processor {
        &self.core
    }

    /// One reusable [`SimState`] per core, sized for `program`.
    pub fn states_for(&self, program: &Program) -> Vec<SimState> {
        (0..self.config.cores)
            .map(|_| self.core.state_for(program))
            .collect()
    }

    /// The contiguous shard ranges batch-sharded execution assigns to each
    /// core: `queries / cores` queries per core, the first `queries % cores`
    /// cores taking one extra.  This is the same split as host-thread
    /// parallelism in `spn-platforms`, so shard outputs concatenate to the
    /// exact serial batch order.
    pub fn shard_ranges(cores: usize, queries: usize) -> Vec<std::ops::Range<usize>> {
        let cores = cores.max(1);
        let base = queries / cores;
        let remainder = queries % cores;
        let mut start = 0;
        (0..cores)
            .map(|i| {
                let len = base + usize::from(i < remainder);
                let range = start..start + len;
                start += len;
                range
            })
            .collect()
    }

    fn check_hooks(&self, hooks: usize, needed: usize) -> Result<()> {
        if hooks < needed {
            return Err(ProcessorError::InvalidConfig {
                reason: format!("{hooks} trace recorders for {needed} cores"),
            });
        }
        Ok(())
    }

    /// Executes `program` over a batch, sharding the queries across cores.
    ///
    /// `flat_inputs` holds `queries` consecutive input vectors, exactly as
    /// for [`Processor::run_batch_with`]; `states` is resized to one
    /// [`SimState`] per core when it does not fit.  Outputs are in batch
    /// order, bit-for-bit equal to a single-core run.
    ///
    /// # Errors
    ///
    /// As for [`Processor::run_batch_with`].
    pub fn run_batch_sharded(
        &self,
        program: &Program,
        flat_inputs: &[f64],
        queries: usize,
        states: &mut Vec<SimState>,
    ) -> Result<MultiCoreBatch> {
        let mut hooks = vec![NoTrace; self.config.cores];
        self.run_batch_sharded_with_hooks(program, flat_inputs, queries, states, &mut hooks)
    }

    /// [`MultiCoreProcessor::run_batch_sharded`] with one trace recorder per
    /// core (`recorders[c]` collects core `c`'s per-cycle events, with a
    /// query marker before each query).  Queries are rebased onto the
    /// core's cumulative shard timeline — compute plus modeled
    /// shared-memory stalls of the preceding queries — so both schedule and
    /// contention changes move recorded cycles.
    ///
    /// # Errors
    ///
    /// As for [`MultiCoreProcessor::run_batch_sharded`], plus
    /// [`ProcessorError::InvalidConfig`] when fewer recorders than cores are
    /// supplied.
    pub fn run_batch_sharded_traced(
        &self,
        program: &Program,
        flat_inputs: &[f64],
        queries: usize,
        states: &mut Vec<SimState>,
        recorders: &mut [TraceRecorder],
    ) -> Result<MultiCoreBatch> {
        self.check_hooks(recorders.len(), self.config.cores)?;
        self.run_batch_sharded_with_hooks(program, flat_inputs, queries, states, recorders)
    }

    fn run_batch_sharded_with_hooks<H: TraceHook>(
        &self,
        program: &Program,
        flat_inputs: &[f64],
        queries: usize,
        states: &mut Vec<SimState>,
        hooks: &mut [H],
    ) -> Result<MultiCoreBatch> {
        let per_query = program.input_layout.len();
        if flat_inputs.len() != queries * per_query {
            return Err(ProcessorError::InputMismatch {
                expected: queries * per_query,
                got: flat_inputs.len(),
            });
        }
        if states.len() != self.config.cores {
            *states = self.states_for(program);
        }
        let ranges = Self::shard_ranges(self.config.cores, queries);
        let mut outputs = Vec::with_capacity(queries);
        let mut per_core = Vec::with_capacity(self.config.cores);
        for (c, range) in ranges.iter().enumerate() {
            let hook = &mut hooks[c];
            let mut work = PerfReport::default();
            for q in range.clone() {
                if H::ENABLED {
                    hook.on_query(q as u64);
                    // Place this query on the core's cumulative timeline:
                    // compute cycles plus the modeled wave-arbitration
                    // stalls of every earlier query in the shard, so a
                    // contention-model change shifts recorded cycles.
                    let transactions = work.memory_loads + work.memory_stores;
                    hook.rebase(
                        work.cycles + self.config.shared_memory.wave_penalty(c) * transactions,
                    );
                }
                let inputs = &flat_inputs[q * per_query..(q + 1) * per_query];
                let run = self
                    .core
                    .run_with_hook(program, inputs, &mut states[c], hook)?;
                outputs.push(run.output);
                work.merge(&run.perf);
            }
            if work.platform.is_empty() {
                work.platform.clone_from(&self.config.core.name);
            }
            let transactions = work.memory_loads + work.memory_stores;
            per_core.push(CorePerf {
                core: c,
                compute_cycles: work.cycles,
                memory_stall_cycles: self.config.shared_memory.wave_penalty(c) * transactions,
                interconnect_stall_cycles: 0,
                idle_cycles: 0,
                work,
            });
        }
        let makespan = per_core
            .iter()
            .map(CorePerf::busy_cycles)
            .max()
            .unwrap_or(0);
        for core in &mut per_core {
            core.idle_cycles = makespan - core.busy_cycles();
        }
        let cores = MultiCorePerf {
            makespan_cycles: makespan,
            per_core,
        };
        let perf = cores.merged(&self.config.name(), queries as u64);
        Ok(MultiCoreBatch {
            outputs,
            perf,
            cores,
        })
    }

    /// Executes a partitioned program over a batch, pipelining the stages
    /// across cores.
    ///
    /// `flat_inputs` holds `queries` consecutive *global* input vectors
    /// ([`PartitionedProgram::num_inputs`] values each); stage-to-stage
    /// operands are forwarded in-process and their interconnect latency is
    /// folded into the timing model.  Outputs are the final stage's root
    /// values, bit-for-bit equal to running the unpartitioned program.
    ///
    /// # Errors
    ///
    /// Any [`PartitionedProgram::validate`] error, plus the single-core
    /// errors of each stage's program.
    pub fn run_partitioned(
        &self,
        parts: &PartitionedProgram,
        flat_inputs: &[f64],
        queries: usize,
        states: &mut Vec<SimState>,
    ) -> Result<MultiCoreBatch> {
        let mut hooks = vec![NoTrace; self.config.cores];
        self.run_partitioned_with_hooks(parts, flat_inputs, queries, states, &mut hooks)
    }

    /// [`MultiCoreProcessor::run_partitioned`] with one trace recorder per
    /// core.  Each stage's events are rebased onto the global pipeline
    /// timeline (`start_j + q × II`), so any change to stage cycles or
    /// interconnect latency shifts the recorded cycles and is caught by the
    /// trace differ.
    ///
    /// # Errors
    ///
    /// As for [`MultiCoreProcessor::run_partitioned`], plus
    /// [`ProcessorError::InvalidConfig`] when fewer recorders than stages
    /// are supplied.
    pub fn run_partitioned_traced(
        &self,
        parts: &PartitionedProgram,
        flat_inputs: &[f64],
        queries: usize,
        states: &mut Vec<SimState>,
        recorders: &mut [TraceRecorder],
    ) -> Result<MultiCoreBatch> {
        self.check_hooks(recorders.len(), parts.stages.len())?;
        self.run_partitioned_with_hooks(parts, flat_inputs, queries, states, recorders)
    }

    fn run_partitioned_with_hooks<H: TraceHook>(
        &self,
        parts: &PartitionedProgram,
        flat_inputs: &[f64],
        queries: usize,
        states: &mut Vec<SimState>,
        hooks: &mut [H],
    ) -> Result<MultiCoreBatch> {
        parts.validate(self.config.cores)?;
        let stages = &parts.stages;
        let num_stages = stages.len();
        if flat_inputs.len() != queries * parts.num_inputs {
            return Err(ProcessorError::InputMismatch {
                expected: queries * parts.num_inputs,
                got: flat_inputs.len(),
            });
        }
        if states.len() < num_stages {
            *states = stages
                .iter()
                .map(|stage| self.core.state_for(&stage.program))
                .collect();
        }

        // Calibration pass: one zero-input run per stage pins the
        // data-independent per-query cycle count, from which the pipeline
        // schedule (stage starts, initiation interval) is derived before
        // any traced query executes.
        let mut stage_cycles = vec![0u64; num_stages];
        for (j, stage) in stages.iter().enumerate() {
            let zeros = vec![0.0; stage.program.input_layout.len()];
            let run = self.core.run_with(&stage.program, &zeros, &mut states[j])?;
            let transactions = run.perf.memory_loads + run.perf.memory_stores;
            stage_cycles[j] =
                run.perf.cycles + self.config.shared_memory.wave_penalty(j) * transactions;
        }
        let mut starts = vec![0u64; num_stages];
        let mut exposed_transfer = vec![0u64; num_stages];
        for j in 0..num_stages {
            let mut start = 0u64;
            let mut producers_done = 0u64;
            for src in &stages[j].inputs {
                if let TransferSource::Core { core, .. } = *src {
                    let k = core as usize;
                    let finish = starts[k] + stage_cycles[k];
                    start = start.max(finish + self.config.interconnect.latency(k, j));
                    producers_done = producers_done.max(finish);
                }
            }
            starts[j] = start;
            // The wait beyond "all producers finished" is transfer latency
            // exposed once at pipeline fill; steady-state transfers overlap
            // with the previous query's compute.
            exposed_transfer[j] = start - producers_done;
        }
        let ii = stage_cycles.iter().copied().max().unwrap_or(0);

        let mut outputs = Vec::with_capacity(queries);
        let mut work: Vec<PerfReport> = vec![PerfReport::default(); num_stages];
        let mut exports: Vec<Vec<f64>> = vec![Vec::new(); num_stages];
        let mut local_inputs: Vec<f64> = Vec::new();
        for q in 0..queries {
            let global = &flat_inputs[q * parts.num_inputs..(q + 1) * parts.num_inputs];
            for (j, stage) in stages.iter().enumerate() {
                local_inputs.clear();
                for src in &stage.inputs {
                    local_inputs.push(match *src {
                        TransferSource::Input(i) => global[i as usize],
                        TransferSource::Core { core, export } => {
                            exports[core as usize][export as usize]
                        }
                    });
                }
                let hook = &mut hooks[j];
                if H::ENABLED {
                    hook.on_query(q as u64);
                    hook.rebase(starts[j] + q as u64 * ii);
                }
                let run =
                    self.core
                        .run_with_hook(&stage.program, &local_inputs, &mut states[j], hook)?;
                exports[j] = run.exports;
                work[j].merge(&run.perf);
                if j == num_stages - 1 {
                    outputs.push(run.output);
                }
            }
        }

        let makespan = if queries == 0 {
            0
        } else {
            starts[num_stages - 1] + stage_cycles[num_stages - 1] + (queries as u64 - 1) * ii
        };
        let mut per_core = Vec::with_capacity(self.config.cores);
        for (j, mut work) in work.into_iter().enumerate() {
            if work.platform.is_empty() {
                work.platform.clone_from(&self.config.core.name);
            }
            let transactions = work.memory_loads + work.memory_stores;
            let memory_stall = self.config.shared_memory.wave_penalty(j) * transactions;
            let mut core = CorePerf {
                core: j,
                compute_cycles: work.cycles,
                memory_stall_cycles: memory_stall,
                interconnect_stall_cycles: if queries == 0 { 0 } else { exposed_transfer[j] },
                idle_cycles: 0,
                work,
            };
            core.idle_cycles = makespan.saturating_sub(core.busy_cycles());
            per_core.push(core);
        }
        for j in num_stages..self.config.cores {
            per_core.push(CorePerf {
                core: j,
                idle_cycles: makespan,
                ..CorePerf::default()
            });
        }
        let cores = MultiCorePerf {
            makespan_cycles: makespan,
            per_core,
        };
        let perf = cores.merged(&self.config.name(), queries as u64);
        Ok(MultiCoreBatch {
            outputs,
            perf,
            cores,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ProcessorConfig;
    use crate::isa::{
        InputSlot, Instruction, MemOp, PeOp, ReadSel, TreeInstr, ValueLocation, WriteCmd,
    };
    use crate::precision::Precision;

    fn cfg() -> ProcessorConfig {
        ProcessorConfig::ptree()
    }

    /// Loads (a, b, c, d) from row 0 and computes (a + b) × (c + d).
    fn sum_of_products_program() -> Program {
        let config = cfg();
        let mut load = Instruction::nop(&config);
        load.mem = MemOp::Load { row: 0, reg: 0 };
        let mut compute = Instruction::nop(&config);
        {
            let tree = &mut compute.trees[0];
            for (i, sel) in tree.reads.iter_mut().enumerate().take(4) {
                *sel = ReadSel::Reg {
                    bank: i as u16,
                    reg: 0,
                };
            }
            tree.pe_ops[TreeInstr::pe_flat_index(&config, 0, 0)] = PeOp::Add;
            tree.pe_ops[TreeInstr::pe_flat_index(&config, 0, 1)] = PeOp::Add;
            tree.pe_ops[TreeInstr::pe_flat_index(&config, 1, 0)] = PeOp::Mul;
            tree.writes.push(WriteCmd {
                level: 1,
                pe: 0,
                bank: 0,
                reg: 1,
            });
        }
        Program {
            config,
            instructions: vec![load, compute],
            input_layout: (0..4).map(|lane| InputSlot { row: 0, lane }).collect(),
            memory_rows_used: 1,
            output: ValueLocation::Register { bank: 0, reg: 1 },
            exports: Vec::new(),
            num_source_ops: 3,
            pe_precision: Precision::F64,
        }
    }

    /// Two-stage pipeline computing (a + b) × c: stage 0 exports a + b,
    /// stage 1 multiplies the import by global input c.
    fn two_stage_pipeline() -> PartitionedProgram {
        let config = cfg();
        // Stage 0: load (a, b), add, export the sum.
        let mut load = Instruction::nop(&config);
        load.mem = MemOp::Load { row: 0, reg: 0 };
        let mut compute = Instruction::nop(&config);
        compute.trees[0].reads[0] = ReadSel::Reg { bank: 0, reg: 0 };
        compute.trees[0].reads[1] = ReadSel::Reg { bank: 1, reg: 0 };
        compute.trees[0].pe_ops[TreeInstr::pe_flat_index(&config, 0, 0)] = PeOp::Add;
        compute.trees[0].writes.push(WriteCmd {
            level: 0,
            pe: 0,
            bank: 0,
            reg: 1,
        });
        let stage0 = CoreProgram {
            program: Program {
                config: config.clone(),
                instructions: vec![load.clone(), compute],
                input_layout: vec![InputSlot { row: 0, lane: 0 }, InputSlot { row: 0, lane: 1 }],
                memory_rows_used: 1,
                output: ValueLocation::Register { bank: 0, reg: 1 },
                exports: vec![ValueLocation::Register { bank: 0, reg: 1 }],
                num_source_ops: 1,
                pe_precision: Precision::F64,
            },
            inputs: vec![TransferSource::Input(0), TransferSource::Input(1)],
        };
        // Stage 1: load (sum, c), multiply.
        let mut compute = Instruction::nop(&config);
        compute.trees[0].reads[0] = ReadSel::Reg { bank: 0, reg: 0 };
        compute.trees[0].reads[1] = ReadSel::Reg { bank: 1, reg: 0 };
        compute.trees[0].pe_ops[TreeInstr::pe_flat_index(&config, 0, 0)] = PeOp::Mul;
        compute.trees[0].writes.push(WriteCmd {
            level: 0,
            pe: 0,
            bank: 1,
            reg: 1,
        });
        let stage1 = CoreProgram {
            program: Program {
                config: config.clone(),
                instructions: vec![load, compute],
                input_layout: vec![InputSlot { row: 0, lane: 0 }, InputSlot { row: 0, lane: 1 }],
                memory_rows_used: 1,
                output: ValueLocation::Register { bank: 1, reg: 1 },
                exports: Vec::new(),
                num_source_ops: 1,
                pe_precision: Precision::F64,
            },
            inputs: vec![
                TransferSource::Core { core: 0, export: 0 },
                TransferSource::Input(2),
            ],
        };
        PartitionedProgram {
            stages: vec![stage0, stage1],
            num_inputs: 3,
        }
    }

    #[test]
    fn sharded_outputs_match_single_core_batch() {
        let program = sum_of_products_program();
        let flat: Vec<f64> = (0..20).map(|i| i as f64 + 0.5).collect(); // 5 queries
        let single = Processor::new(cfg()).unwrap();
        let serial = single.run_batch(&program, &flat, 5).unwrap();
        for cores in [1usize, 2, 3, 4] {
            let mc = MultiCoreProcessor::new(MultiCoreConfig::new(cores, cfg())).unwrap();
            let mut states = Vec::new();
            let batch = mc
                .run_batch_sharded(&program, &flat, 5, &mut states)
                .unwrap();
            assert_eq!(batch.outputs, serial.outputs, "{cores} cores");
            assert_eq!(batch.perf.source_ops, serial.perf.source_ops);
            assert_eq!(batch.perf.memory_loads, serial.perf.memory_loads);
            assert_eq!(batch.perf.queries, 5);
            batch.cores.check_accounting().unwrap();
            assert!(batch.perf.cycles <= serial.perf.cycles);
            if cores == 1 {
                assert_eq!(batch.perf, serial.perf);
            }
        }
    }

    #[test]
    fn sharded_memory_contention_scales_with_wave() {
        let program = sum_of_products_program();
        let flat: Vec<f64> = vec![1.0; 16]; // 4 queries
        let mut config = MultiCoreConfig::new(4, cfg());
        config.shared_memory.ports = 1;
        let mc = MultiCoreProcessor::new(config).unwrap();
        let mut states = Vec::new();
        let batch = mc
            .run_batch_sharded(&program, &flat, 4, &mut states)
            .unwrap();
        // One load per query, one query per core: core c stalls c cycles.
        for (c, core) in batch.cores.per_core.iter().enumerate() {
            assert_eq!(core.memory_stall_cycles, c as u64);
        }
        batch.cores.check_accounting().unwrap();
        assert_eq!(
            batch.cores.makespan_cycles,
            batch.cores.per_core[3].busy_cycles()
        );
    }

    #[test]
    fn partitioned_pipeline_computes_and_accounts() {
        let parts = two_stage_pipeline();
        let mc = MultiCoreProcessor::new(MultiCoreConfig::new(2, cfg())).unwrap();
        let mut states = Vec::new();
        let flat: Vec<f64> = [[1.0, 2.0, 3.0], [0.5, 0.25, 4.0], [10.0, -1.0, 2.0]].concat();
        let batch = mc.run_partitioned(&parts, &flat, 3, &mut states).unwrap();
        assert_eq!(batch.outputs, vec![9.0, 3.0, 18.0]);
        batch.cores.check_accounting().unwrap();
        // Stage 0 takes 2 cycles (load, compute; leaf commits same cycle);
        // stage 1 takes 3 (plus one shared-memory wave cycle on its load)
        // and starts after stage 0 finishes plus the 0→1 transfer
        // (2 setup + 1 hop).  The slowest stage sets the initiation
        // interval.
        let ii = 3;
        let start1 = 2 + 3;
        assert_eq!(batch.cores.makespan_cycles, start1 + 3 + (3 - 1) * ii);
        assert_eq!(batch.cores.per_core[0].interconnect_stall_cycles, 0);
        assert_eq!(batch.cores.per_core[1].interconnect_stall_cycles, 3);
        assert_eq!(batch.perf.queries, 3);
        assert_eq!(batch.perf.source_ops, 2 * 3);
    }

    #[test]
    fn partitioned_traces_sit_on_the_global_timeline() {
        let parts = two_stage_pipeline();
        let mc = MultiCoreProcessor::new(MultiCoreConfig::new(2, cfg())).unwrap();
        let mut states = Vec::new();
        let mut recorders = vec![TraceRecorder::new(0), TraceRecorder::new(1)];
        let flat = vec![1.0, 2.0, 3.0];
        mc.run_partitioned_traced(&parts, &flat, 1, &mut states, &mut recorders)
            .unwrap();
        let stage1 = recorders[1].render();
        // Stage 1 starts at global cycle 5 (stage 0 cycles + transfer).
        assert!(stage1.contains("C00005 core=1 mem load"), "{stage1}");
        // A slower interconnect shifts stage 1's rows — the divergence the
        // golden-trace suite pins.
        let mut config = MultiCoreConfig::new(2, cfg());
        config.interconnect.hop_latency += 2;
        let slow = MultiCoreProcessor::new(config).unwrap();
        let mut slow_recorders = vec![TraceRecorder::new(0), TraceRecorder::new(1)];
        slow.run_partitioned_traced(&parts, &flat, 1, &mut Vec::new(), &mut slow_recorders)
            .unwrap();
        let divergence = crate::trace::diff_traces(&stage1, &slow_recorders[1].render()).unwrap();
        assert_eq!(divergence.line, 2); // query marker matches, first row moves
        assert_eq!(divergence.cycle, Some(5));
    }

    #[test]
    fn malformed_partitions_are_rejected() {
        let mc = MultiCoreProcessor::new(MultiCoreConfig::new(2, cfg())).unwrap();
        let parts = two_stage_pipeline();
        // More stages than cores.
        let single = MultiCoreProcessor::new(MultiCoreConfig::new(1, cfg())).unwrap();
        assert!(matches!(
            single.run_partitioned(&parts, &[0.0; 3], 1, &mut Vec::new()),
            Err(ProcessorError::InvalidConfig { .. })
        ));
        // Import from a non-earlier core.
        let mut bad = two_stage_pipeline();
        bad.stages[1].inputs[0] = TransferSource::Core { core: 1, export: 0 };
        assert!(bad.validate(2).is_err());
        // Export index out of range.
        let mut bad = two_stage_pipeline();
        bad.stages[1].inputs[0] = TransferSource::Core { core: 0, export: 9 };
        assert!(bad.validate(2).is_err());
        // Global input out of range.
        let mut bad = two_stage_pipeline();
        bad.stages[0].inputs[0] = TransferSource::Input(7);
        assert!(bad.validate(2).is_err());
        // A dangling non-final stage breaks pipeline accounting.
        let mut bad = two_stage_pipeline();
        bad.stages[1].inputs[0] = TransferSource::Input(0);
        assert!(bad.validate(2).is_err());
        // The good pipeline passes on the 2-core machine.
        let flat = vec![1.0, 2.0, 3.0];
        assert!(mc
            .run_partitioned(&parts, &flat, 1, &mut Vec::new())
            .is_ok());
    }

    #[test]
    fn shard_ranges_are_contiguous_and_balanced() {
        let ranges = MultiCoreProcessor::shard_ranges(3, 8);
        assert_eq!(ranges, vec![0..3, 3..6, 6..8]);
        assert_eq!(
            MultiCoreProcessor::shard_ranges(4, 2),
            vec![0..1, 1..2, 2..2, 2..2]
        );
    }
}
