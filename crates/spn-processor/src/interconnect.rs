//! Interconnect and shared-memory contention models for multi-core
//! simulation.
//!
//! The AIA follow-ups to the paper scale the single SPN core into a
//! multi-core SoC; two shared resources dominate the added cost and are
//! modeled here:
//!
//! * **Inter-core interconnect** ([`InterconnectConfig`]): cores sit on a
//!   linear on-chip network.  Moving one operand from core `s` to core `d`
//!   costs a fixed link-setup latency plus one hop latency per core crossed
//!   (`|s - d|` hops).  Transfers between a core and itself are free.
//! * **Shared parameter memory** ([`SharedMemoryConfig`]): all cores load
//!   their data-memory images from one shared parameter store with a fixed
//!   number of row-wide ports.  Cores arbitrate in lockstep waves of
//!   `ports` requesters: the first `ports` cores are served immediately,
//!   the next wave one cycle later, and so on, so core `c` pays
//!   `c / ports` extra stall cycles per memory transaction.
//!
//! Both models are deliberately deterministic closed forms — the multi-core
//! scheduler ([`crate::multicore`]) folds them into per-core cycle
//! attribution, and the golden-trace tests pin the resulting schedules
//! bit-for-bit.

use serde::{Deserialize, Serialize};

/// Latency model of the linear inter-core interconnect.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct InterconnectConfig {
    /// Fixed cycles to set up any inter-core transfer (serialisation,
    /// link-level handshake).
    pub link_setup: u64,
    /// Additional cycles per hop between adjacent cores.
    pub hop_latency: u64,
}

impl Default for InterconnectConfig {
    /// Two setup cycles plus one cycle per hop — a small mesh-like budget in
    /// the spirit of the AIA multicore SoC's inter-core register sharing.
    fn default() -> Self {
        InterconnectConfig {
            link_setup: 2,
            hop_latency: 1,
        }
    }
}

impl InterconnectConfig {
    /// Cycles to move one operand from core `from` to core `to`.
    ///
    /// Zero when `from == to`; otherwise `link_setup + hops × hop_latency`
    /// with `hops = |from - to|` on the linear topology.
    pub fn latency(&self, from: usize, to: usize) -> u64 {
        if from == to {
            0
        } else {
            self.link_setup + self.hop_latency * from.abs_diff(to) as u64
        }
    }
}

/// Port model of the shared parameter memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SharedMemoryConfig {
    /// Row-wide ports available per cycle (must be at least 1).
    pub ports: usize,
}

impl Default for SharedMemoryConfig {
    /// A single shared port: contention grows linearly with the core count,
    /// which is the pessimistic end of the design space.
    fn default() -> Self {
        SharedMemoryConfig { ports: 1 }
    }
}

impl SharedMemoryConfig {
    /// Extra stall cycles core `core` pays per memory transaction under
    /// lockstep wave arbitration (`core / ports`, integer division).
    ///
    /// Callers must have validated `ports >= 1` (see
    /// [`crate::config::MultiCoreConfig::validate`]); this saturates instead
    /// of dividing by zero so a malformed config cannot panic.
    pub fn wave_penalty(&self, core: usize) -> u64 {
        (core / self.ports.max(1)) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_is_zero_on_core_and_symmetric() {
        let ic = InterconnectConfig::default();
        assert_eq!(ic.latency(2, 2), 0);
        assert_eq!(ic.latency(0, 1), 3); // 2 setup + 1 hop
        assert_eq!(ic.latency(1, 0), 3);
        assert_eq!(ic.latency(0, 3), 5); // 2 setup + 3 hops
    }

    #[test]
    fn hop_latency_scales_with_distance() {
        let ic = InterconnectConfig {
            link_setup: 10,
            hop_latency: 4,
        };
        assert_eq!(ic.latency(1, 5), 10 + 4 * 4);
    }

    #[test]
    fn wave_penalty_follows_port_count() {
        let one = SharedMemoryConfig { ports: 1 };
        assert_eq!(one.wave_penalty(0), 0);
        assert_eq!(one.wave_penalty(3), 3);
        let two = SharedMemoryConfig { ports: 2 };
        assert_eq!(two.wave_penalty(0), 0);
        assert_eq!(two.wave_penalty(1), 0);
        assert_eq!(two.wave_penalty(2), 1);
        assert_eq!(two.wave_penalty(5), 2);
    }

    #[test]
    fn zero_ports_saturates_instead_of_panicking() {
        let bad = SharedMemoryConfig { ports: 0 };
        assert_eq!(bad.wave_penalty(7), 7);
    }
}
