//! Baseline execution models for SPN inference: CPU and GPU.
//!
//! The paper compares its processor against an Intel Core i5-7200U running
//! the SPN as a flat list of scalar operations (Algorithm 1) and against a
//! hand-optimised CUDA kernel on the Nvidia Jetson TX2 (Algorithm 3).  Those
//! physical platforms are not available here, so this crate models them
//! mechanistically: both models execute the *actual* flattened circuit and
//! count cycles from the microarchitectural bottlenecks the paper identifies
//! (scalar dependency chains and memory traffic on the CPU; thread
//! synchronisation, shared-memory bank conflicts and divergence on the GPU).
//!
//! The models report the same [`PerfReport`] as the processor simulator, so
//! the benchmark harness can tabulate all platforms side by side.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cpu;
pub mod gpu;
pub mod platform;

pub use cpu::{CpuConfig, CpuModel};
pub use gpu::{GpuConfig, GpuModel};
pub use platform::Platform;
pub use spn_processor::PerfReport;
