//! Execution backends for SPN inference: CPU model, GPU model, and the
//! custom processor, all behind one two-phase interface.
//!
//! # The compile / execute split
//!
//! Every platform implements the [`Backend`] trait, which separates the two
//! phases of the paper's deployment model:
//!
//! * **compile** (once per circuit): [`Backend::compile`] turns a flattened
//!   [`spn_core::flatten::OpList`] into a platform-specific artifact.  For
//!   the CPU and GPU models that means running the entire cycle model ahead
//!   of time (straight-line and SIMT schedules are evidence-independent);
//!   for the custom processor it is the full `spn-compiler` pipeline
//!   producing a cached VLIW program.
//! * **execute** (per evidence batch): [`Backend::execute_batch`] streams a
//!   dense [`spn_core::EvidenceBatch`] through the artifact, reusing
//!   caller-owned [`ExecBuffers`] so the hot path allocates nothing per
//!   query and reports batch-aware counters in [`BatchResult`].
//!
//! The [`Engine`] handle owns a backend, its compiled artifact and the
//! buffers — construct it once with [`Engine::new`] and an
//! [`EngineOptions`] (numeric domain, emulated PE precision, backend tuning
//! knobs), then call [`Engine::execute_batch`] for each batch (or
//! [`Engine::execute`] for the occasional single query).
//!
//! Session-shaped workloads — one client flipping a few evidence variables
//! between consecutive queries — use [`Engine::open_session`] /
//! [`Engine::session_delta`]: on the CPU model deltas re-execute only the
//! flipped variables' reachable cones (bit-for-bit with a full pass, every
//! numeric mode and precision; see [`spn_core::incremental`]), and other
//! backends transparently fall back to full passes.
//!
//! # Scaling out and richer queries
//!
//! Two layers sit on top of the serial batched path:
//!
//! * **Parallel sharded execution** — [`Backend::execute_batch_parallel`] /
//!   [`Engine::execute_batch_parallel`] split one batch into contiguous
//!   shards executed by a fixed pool of scoped worker threads (one
//!   [`backend::WorkerState`] each, configured by a [`Parallelism`]), and
//!   stitch the results back in batch order — bit-for-bit identical to the
//!   serial path.
//! * **Query modes** — [`Engine::execute_query`] /
//!   [`Engine::execute_query_parallel`] answer
//!   [`spn_core::QueryBatch`]es: joint and marginal probabilities, MAP
//!   completions (max-product artifact with argmax traceback) and
//!   conditionals (ratio of two passes), all lowered onto the same batched
//!   kernels.
//!
//! # The modelled platforms
//!
//! The paper compares its processor against an Intel Core i5-7200U running
//! the SPN as a flat list of scalar operations (Algorithm 1) and against a
//! hand-optimised CUDA kernel on the Nvidia Jetson TX2 (Algorithm 3).  Those
//! physical platforms are not available here, so this crate models them
//! mechanistically: both models execute the *actual* flattened circuit and
//! count cycles from the microarchitectural bottlenecks the paper identifies
//! (scalar dependency chains and memory traffic on the CPU; thread
//! synchronisation, shared-memory bank conflicts and divergence on the GPU).
//! The custom processor is executed by the cycle-accurate simulator in
//! `spn-processor`.  All three report the same batch-aware [`PerfReport`],
//! so the benchmark harness can tabulate them side by side.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod cpu;
pub mod engine;
pub mod gpu;
pub mod options;
pub mod processor;

pub use backend::{Backend, BackendError, BatchResult, ExecBuffers, Parallelism, WorkerState};
pub use cpu::{CpuCompiled, CpuConfig, CpuModel};
pub use engine::{Engine, EvalSession, MapArtifact, QueryOutput};
pub use gpu::{GpuCompiled, GpuConfig, GpuModel};
pub use options::{EngineOptions, VerifyLevel};
pub use processor::{ProcessorBackend, ProcessorScratch};
pub use spn_core::incremental::DeltaOutcome;
pub use spn_processor::PerfReport;
