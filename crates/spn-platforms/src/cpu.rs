//! Superscalar CPU execution model.
//!
//! Models the paper's CPU baseline: an Intel Core i5-7200U executing the SPN
//! as a flat list of scalar operations (Algorithm 1) compiled to straight-line
//! code.  The model executes the real operation list for the value and counts
//! cycles from the bottlenecks such code runs into:
//!
//! * only two floating-point units and two load ports per cycle,
//! * the working array no longer fits the architectural/physical registers,
//!   so most operands come from loads and most results go back to memory,
//! * the straight-line code itself is megabytes long, so the front end can
//!   only feed the core at its fetch bandwidth,
//! * data sets bigger than the 32 KB L1 pay an extra miss penalty,
//! * dependency chains through the DAG put a floor on latency.
//!
//! The default parameters are calibrated so that large irregular SPNs land
//! near the paper's measured peak of ≈ 0.55 effective operations per cycle.

use std::sync::Arc;

use serde::{Deserialize, Serialize};
use spn_core::batch::{EvidenceBatch, InputRecipe};
use spn_core::flatten::{OpList, OperandRef};
use spn_core::incremental::ConeAnalysis;
use spn_core::vectorized;
use spn_processor::PerfReport;

use crate::backend::{Backend, BackendError, BatchResult, ExecBuffers};
use crate::options::EngineOptions;

/// Microarchitectural parameters of the CPU model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CpuConfig {
    /// Display name.
    pub name: String,
    /// Micro-ops the front end can issue per cycle.
    pub issue_width: f64,
    /// Floating-point units (arithmetic operations per cycle).
    pub fp_units: f64,
    /// Load ports (loads per cycle).
    pub load_ports: f64,
    /// Store ports (stores per cycle).
    pub store_ports: f64,
    /// Latency of a floating-point operation in cycles.
    pub fp_latency: u64,
    /// L1 load-to-use latency in cycles.
    pub l1_latency: u64,
    /// L1 data-cache capacity in bytes.
    pub l1_bytes: usize,
    /// Additional latency of an L2 hit, in cycles.
    pub l2_extra_latency: f64,
    /// Overlapping outstanding misses (memory-level parallelism).
    pub miss_parallelism: f64,
    /// Values that stay in registers: operands produced at most this many
    /// operations earlier need no load.
    pub register_window: usize,
    /// Average machine-code bytes per SPN operation in the straight-line code.
    pub code_bytes_per_op: f64,
    /// Instruction-fetch bandwidth in bytes per cycle.
    pub fetch_bytes_per_cycle: f64,
    /// Fixed micro-op overhead per operation (addressing, loop bookkeeping).
    pub overhead_uops: f64,
}

impl Default for CpuConfig {
    fn default() -> Self {
        CpuConfig {
            name: "CPU".to_string(),
            issue_width: 4.0,
            fp_units: 2.0,
            load_ports: 2.0,
            store_ports: 1.0,
            fp_latency: 4,
            l1_latency: 4,
            l1_bytes: 32 * 1024,
            l2_extra_latency: 10.0,
            miss_parallelism: 4.0,
            register_window: 168,
            code_bytes_per_op: 22.0,
            fetch_bytes_per_cycle: 16.0,
            overhead_uops: 1.0,
        }
    }
}

/// The CPU execution model.
///
/// By default the execute-many path runs **lane-blocked**: full blocks of
/// [`spn_core::vectorized::MAX_LANES`] queries go through the batch-major
/// kernels of [`spn_core::vectorized`] (fixed-trip inner loops the
/// autovectorizer turns into SIMD), and the ragged tail falls back to the
/// scalar [`OpList::run_into`] oracle.  Lane blocking only regroups
/// independent queries, so results are bit-for-bit those of the scalar
/// path at every lane width; [`CpuModel::scalar`] selects the pure scalar
/// loop (the oracle and benchmark baseline).
#[derive(Debug, Clone)]
pub struct CpuModel {
    config: CpuConfig,
    lanes: usize,
}

impl Default for CpuModel {
    /// Default parameters, lane-blocked at the widest supported width.
    fn default() -> Self {
        CpuModel {
            config: CpuConfig::default(),
            lanes: vectorized::MAX_LANES,
        }
    }
}

impl CpuModel {
    /// Creates a model with default (i5-7200U class) parameters and
    /// lane-blocked execution.
    pub fn new() -> Self {
        CpuModel::default()
    }

    /// Creates a model with explicit parameters (lane-blocked execution).
    pub fn with_config(config: CpuConfig) -> Self {
        CpuModel {
            config,
            lanes: vectorized::MAX_LANES,
        }
    }

    /// A model that executes every query through the scalar
    /// [`OpList::run_into`] loop — the bit-for-bit oracle the lane-blocked
    /// path is checked against, and the baseline the benchmarks compare to.
    pub fn scalar() -> Self {
        CpuModel::new().with_lanes(1)
    }

    /// Sets the lane-block width of the execute-many path.
    ///
    /// `lanes` is normalised onto the supported widths
    /// ([`spn_core::vectorized::normalize_lanes`]): `0`/`1` select the
    /// scalar loop, larger values round down to `2`, `4` or `8`.
    pub fn with_lanes(mut self, lanes: usize) -> Self {
        self.lanes = vectorized::normalize_lanes(lanes);
        self
    }

    /// The lane-block width of the execute-many path (`1` = scalar).
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// The model parameters.
    pub fn config(&self) -> &CpuConfig {
        &self.config
    }

    /// Counts cycles for one inference pass over `ops`.
    pub fn model_cycles(&self, ops: &OpList) -> PerfReport {
        let cfg = &self.config;
        let n = ops.num_ops();
        if n == 0 {
            return PerfReport {
                platform: cfg.name.clone(),
                queries: 1,
                cycles: 1,
                ..Default::default()
            };
        }

        // Memory traffic: operands count as loads when they are program
        // inputs or were produced too long ago to still sit in a register;
        // results count as stores when some consumer is that far away.
        let mut loads = 0usize;
        let mut last_consumer = vec![0usize; n];
        for (i, op) in ops.ops().iter().enumerate() {
            for operand in [op.lhs, op.rhs] {
                match operand {
                    OperandRef::Input(_) => loads += 1,
                    OperandRef::Op(j) => {
                        let distance = i - j as usize;
                        if distance > cfg.register_window {
                            loads += 1;
                        }
                        last_consumer[j as usize] = i;
                    }
                }
            }
        }
        let stores = (0..n)
            .filter(|&j| last_consumer[j].saturating_sub(j) > cfg.register_window)
            .count()
            + 1; // the root is always written out

        // Throughput bounds.
        let uops = n as f64 * (1.0 + cfg.overhead_uops) + (loads + stores) as f64;
        let fp_bound = n as f64 / cfg.fp_units;
        let load_bound = loads as f64 / cfg.load_ports;
        let store_bound = stores as f64 / cfg.store_ports;
        let issue_bound = uops / cfg.issue_width;
        let fetch_bound = n as f64 * cfg.code_bytes_per_op / cfg.fetch_bytes_per_cycle;

        // Latency bound: the critical path through the DAG, paying the FP
        // latency per level and the L1 latency when the operand was loaded.
        let mut depth = vec![0u64; n];
        let mut critical = 0u64;
        for (i, op) in ops.ops().iter().enumerate() {
            let mut d = 0u64;
            for operand in [op.lhs, op.rhs] {
                let operand_depth = match operand {
                    OperandRef::Input(_) => cfg.l1_latency,
                    OperandRef::Op(j) => {
                        let dist = i - j as usize;
                        depth[j as usize]
                            + if dist > cfg.register_window {
                                cfg.l1_latency
                            } else {
                                0
                            }
                    }
                };
                d = d.max(operand_depth);
            }
            depth[i] = d + cfg.fp_latency;
            critical = critical.max(depth[i]);
        }

        // Cache behaviour: the working array (inputs + intermediates, 32-bit
        // words) beyond L1 capacity pays an L2 penalty on its share of loads.
        let working_set = (ops.num_inputs() + n) * 4;
        let miss_fraction = if working_set > cfg.l1_bytes {
            1.0 - cfg.l1_bytes as f64 / working_set as f64
        } else {
            0.0
        };
        let miss_penalty =
            loads as f64 * miss_fraction * cfg.l2_extra_latency / cfg.miss_parallelism;

        let cycles = fp_bound
            .max(load_bound)
            .max(store_bound)
            .max(issue_bound)
            .max(fetch_bound)
            .max(critical as f64)
            + miss_penalty;

        PerfReport {
            platform: cfg.name.clone(),
            queries: 1,
            cycles: cycles.ceil() as u64,
            source_ops: n as u64,
            issued_ops: n as u64,
            instructions: uops.ceil() as u64,
            stall_cycles: 0,
            memory_loads: loads as u64,
            memory_stores: stores as u64,
            writebacks: stores as u64,
            operand_reads: 2 * n as u64,
        }
    }
}

/// The CPU model's compiled artifact: the program itself plus everything
/// evidence-independent — the input recipe, the modelled per-query cost
/// (straight-line code has the same cycle count for every query, so the
/// whole microarchitectural model runs once at compile time), and the
/// per-variable reachability cones backing incremental session evaluation.
#[derive(Debug, Clone)]
pub struct CpuCompiled {
    ops: OpList,
    recipe: InputRecipe,
    perf_per_query: PerfReport,
    cones: Arc<ConeAnalysis>,
}

impl CpuCompiled {
    /// The flattened program this artifact executes.
    pub fn ops(&self) -> &OpList {
        &self.ops
    }

    /// The modelled cost of one inference pass.
    pub fn perf_per_query(&self) -> &PerfReport {
        &self.perf_per_query
    }

    /// Per-variable reachability cones of the program (shared with every
    /// session evaluating this artifact).
    pub fn cone_analysis(&self) -> &ConeAnalysis {
        &self.cones
    }
}

impl Backend for CpuModel {
    type Compiled = CpuCompiled;
    type Scratch = ();

    fn name(&self) -> String {
        self.config.name.clone()
    }

    /// Takes [`EngineOptions::lanes`] as the lane-block width (normalised
    /// like [`CpuModel::with_lanes`]); other knobs are not the CPU model's.
    fn configure(&mut self, options: &EngineOptions) -> Result<(), BackendError> {
        if let Some(lanes) = options.lanes {
            self.lanes = vectorized::normalize_lanes(lanes);
        }
        Ok(())
    }

    fn compile(&self, ops: &OpList) -> Result<CpuCompiled, BackendError> {
        Ok(CpuCompiled {
            recipe: ops.input_recipe(),
            perf_per_query: self.model_cycles(ops),
            cones: Arc::new(ConeAnalysis::from_op_list(ops)),
            ops: ops.clone(),
        })
    }

    /// The CPU model supports incremental sessions: its scalar single-query
    /// path is exactly [`OpList::run_into`], so cone re-execution and full
    /// passes agree bit-for-bit.
    fn cone_analysis(&self, compiled: &CpuCompiled) -> Option<Arc<ConeAnalysis>> {
        Some(Arc::clone(&compiled.cones))
    }

    fn execute_batch(
        &self,
        compiled: &CpuCompiled,
        batch: &EvidenceBatch,
        buffers: &mut ExecBuffers,
        _scratch: &mut (),
    ) -> Result<BatchResult, BackendError> {
        let lanes = self.lanes;
        if lanes <= 1 || batch.len() < lanes {
            return crate::backend::execute_recipe_batch(
                &compiled.recipe,
                compiled.ops.num_ops(),
                &compiled.perf_per_query,
                &self.config.name,
                batch,
                buffers,
                |inputs, scratch| compiled.ops.run_into(inputs, scratch),
            );
        }

        // Lane-blocked path: the buffers hold one `[slots × lanes]` tile
        // each; full blocks run the batch-major kernels, the ragged tail
        // reuses the tiles' leading slots through the scalar oracle.
        let recipe = &compiled.recipe;
        recipe.check(batch)?;
        let num_inputs = recipe.num_inputs();
        let num_ops = compiled.ops.num_ops();
        buffers.inputs.clear();
        buffers.inputs.resize(num_inputs * lanes, 0.0);
        buffers.scratch.clear();
        buffers.scratch.resize(num_ops * lanes, 0.0);

        let mut values = vec![0.0; batch.len()];
        let mut perf = PerfReport::default();
        let blocked = batch.len() - batch.len() % lanes;
        for start in (0..blocked).step_by(lanes) {
            recipe.fill_lane_block(batch, start, lanes, &mut buffers.inputs);
            vectorized::run_lane_block(
                &compiled.ops,
                lanes,
                &buffers.inputs,
                &mut buffers.scratch,
                &mut values[start..start + lanes],
            );
            for _ in 0..lanes {
                perf.merge(&compiled.perf_per_query);
            }
        }
        for (q, value) in values.iter_mut().enumerate().skip(blocked) {
            recipe.fill_query(batch, q, &mut buffers.inputs[..num_inputs]);
            *value = compiled.ops.run_into(
                &buffers.inputs[..num_inputs],
                &mut buffers.scratch[..num_ops],
            );
            perf.merge(&compiled.perf_per_query);
        }
        if perf.platform.is_empty() {
            self.config.name.clone_into(&mut perf.platform);
        }
        Ok(BatchResult { values, perf })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use spn_core::random::{random_spn, RandomSpnConfig};

    fn big_ops() -> OpList {
        let mut rng = StdRng::seed_from_u64(41);
        let spn = random_spn(&RandomSpnConfig::with_vars(200), &mut rng);
        OpList::from_spn(&spn)
    }

    #[test]
    fn executes_and_matches_reference() {
        let mut rng = StdRng::seed_from_u64(42);
        let spn = random_spn(&RandomSpnConfig::with_vars(12), &mut rng);
        let ops = OpList::from_spn(&spn);
        let cpu = CpuModel::new();
        let compiled = cpu.compile(&ops).unwrap();
        let evidence = spn_core::Evidence::marginal(12);
        let batch = EvidenceBatch::from_evidences(12, std::slice::from_ref(&evidence)).unwrap();
        let result = cpu
            .execute_batch(&compiled, &batch, &mut ExecBuffers::new(), &mut ())
            .unwrap();
        assert!((result.values[0] - spn.evaluate(&evidence).unwrap()).abs() < 1e-9);
        assert_eq!(result.perf.source_ops, ops.num_ops() as u64);
        assert_eq!(result.perf.queries, 1);
        assert!(result.perf.cycles > 0);
    }

    #[test]
    fn batched_execution_reuses_buffers_and_accumulates() {
        let mut rng = StdRng::seed_from_u64(45);
        let spn = random_spn(&RandomSpnConfig::with_vars(10), &mut rng);
        let ops = OpList::from_spn(&spn);
        let cpu = CpuModel::new();
        let compiled = cpu.compile(&ops).unwrap();
        let mut buffers = ExecBuffers::new();

        let mut batch = EvidenceBatch::new(10);
        batch.push_marginal();
        batch.push_assignment(&[true; 10]).unwrap();
        batch.push_assignment(&[false; 10]).unwrap();
        let result = cpu
            .execute_batch(&compiled, &batch, &mut buffers, &mut ())
            .unwrap();
        assert_eq!(result.values.len(), 3);
        assert_eq!(result.perf.queries, 3);
        assert_eq!(result.perf.cycles, 3 * compiled.perf_per_query().cycles);
        for (q, value) in result.values.iter().enumerate() {
            let expected = spn.evaluate(&batch.to_evidence(q)).unwrap();
            assert!((value - expected).abs() < 1e-9, "query {q}");
        }
        // Wrong-arity batches are rejected.
        assert!(cpu
            .execute_batch(
                &compiled,
                &EvidenceBatch::marginals(4, 1),
                &mut buffers,
                &mut ()
            )
            .is_err());
    }

    #[test]
    fn lane_blocked_path_matches_scalar_bit_for_bit_on_ragged_batches() {
        let mut rng = StdRng::seed_from_u64(46);
        let spn = random_spn(&RandomSpnConfig::with_vars(11), &mut rng);
        let ops = OpList::from_spn(&spn).to_log_domain();
        let scalar = CpuModel::scalar();
        let scalar_compiled = scalar.compile(&ops).unwrap();
        for len in [0usize, 1, 7, 8, 9, 16, 23] {
            let mut batch = EvidenceBatch::new(11);
            for q in 0..len {
                let mut e = spn_core::Evidence::marginal(11);
                e.observe(q % 11, q % 3 == 0);
                batch.push(&e).unwrap();
            }
            let want = scalar
                .execute_batch(&scalar_compiled, &batch, &mut ExecBuffers::new(), &mut ())
                .unwrap();
            for lanes in [2usize, 4, 8] {
                let cpu = CpuModel::new().with_lanes(lanes);
                assert_eq!(cpu.lanes(), lanes);
                let compiled = cpu.compile(&ops).unwrap();
                let got = cpu
                    .execute_batch(&compiled, &batch, &mut ExecBuffers::new(), &mut ())
                    .unwrap();
                assert_eq!(got.values.len(), len);
                for (q, (g, w)) in got.values.iter().zip(&want.values).enumerate() {
                    assert_eq!(
                        g.to_bits(),
                        w.to_bits(),
                        "len {len} lanes {lanes} query {q}"
                    );
                }
                assert_eq!(got.perf, want.perf, "len {len} lanes {lanes}");
            }
        }
    }

    #[test]
    fn throughput_lands_in_the_sub_one_ops_per_cycle_regime() {
        let ops = big_ops();
        let report = CpuModel::new().model_cycles(&ops);
        let throughput = report.ops_per_cycle();
        assert!(
            (0.2..1.2).contains(&throughput),
            "CPU model throughput {throughput} outside the plausible range"
        );
    }

    #[test]
    fn more_fp_units_do_not_slow_it_down() {
        let ops = big_ops();
        let slow = CpuModel::new().model_cycles(&ops);
        let fast = CpuModel::with_config(CpuConfig {
            fp_units: 8.0,
            load_ports: 8.0,
            store_ports: 4.0,
            issue_width: 16.0,
            fetch_bytes_per_cycle: 64.0,
            ..Default::default()
        })
        .model_cycles(&ops);
        assert!(fast.cycles <= slow.cycles);
    }

    #[test]
    fn bigger_register_window_reduces_memory_traffic() {
        let ops = big_ops();
        let narrow = CpuModel::with_config(CpuConfig {
            register_window: 8,
            ..Default::default()
        })
        .model_cycles(&ops);
        let wide = CpuModel::with_config(CpuConfig {
            register_window: 100_000,
            ..Default::default()
        })
        .model_cycles(&ops);
        assert!(wide.memory_loads < narrow.memory_loads);
    }

    #[test]
    fn empty_program_costs_one_cycle() {
        let mut b = spn_core::SpnBuilder::new(1);
        let x = b.indicator(spn_core::VarId(0), true);
        let spn = b.finish(x).unwrap();
        let report = CpuModel::new().model_cycles(&OpList::from_spn(&spn));
        assert_eq!(report.cycles, 1);
    }
}
