//! SIMT GPU execution model of the paper's CUDA kernel (Algorithm 3).
//!
//! The CUDA implementation decomposes the SPN into dependency groups,
//! executes each group across the thread block, and synchronises with
//! `__syncthreads()` between groups.  The paper identifies three reasons the
//! resulting scaling is sublinear:
//!
//! 1. **Thread-synchronisation overhead** paid once per dependency group,
//! 2. **Shared-memory bandwidth**: 32 banks serve all threads, and threads
//!    in a warp that hit the same bank are serialised,
//! 3. **Thread divergence** between the sum and product sides of the `if`.
//!
//! The model executes the real operation list group by group (so it also
//! validates the computed value), assigns working-array elements to shared
//! memory banks with the same greedy colouring idea used in the paper, and
//! charges cycles for exactly those three mechanisms plus plain instruction
//! issue.

use serde::{Deserialize, Serialize};
use spn_core::batch::{EvidenceBatch, InputRecipe};
use spn_core::flatten::{OpKind, OpList, OperandRef};
use spn_core::levelize::Levelization;
use spn_processor::PerfReport;

use crate::backend::{Backend, BackendError, BatchResult, ExecBuffers};

/// Parameters of the GPU model (defaults follow the Jetson TX2 block used in
/// the paper: 128 CUDA cores, 32 shared-memory banks).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuConfig {
    /// Display name.
    pub name: String,
    /// Threads in the thread block.
    pub threads: usize,
    /// Threads per warp.
    pub warp_size: usize,
    /// Warps that can be resident/issuing concurrently (CUDA cores / warp).
    pub concurrent_warps: usize,
    /// Shared-memory banks.
    pub shared_banks: usize,
    /// Cycles charged per `__syncthreads()` barrier.
    pub sync_overhead: u64,
    /// Instructions issued per operation per thread (index loads, address
    /// arithmetic, the arithmetic operation itself, the result store).
    pub instructions_per_op: f64,
    /// Extra issue factor when a warp diverges between sum and product.
    pub divergence_penalty: f64,
}

impl Default for GpuConfig {
    fn default() -> Self {
        GpuConfig {
            name: "GPU".to_string(),
            threads: 256,
            warp_size: 32,
            concurrent_warps: 4,
            shared_banks: 32,
            sync_overhead: 36,
            instructions_per_op: 6.0,
            divergence_penalty: 1.6,
        }
    }
}

impl GpuConfig {
    /// A configuration with a different thread-block size (used for the
    /// thread-scaling experiment of Fig. 2c).
    pub fn with_threads(threads: usize) -> Self {
        GpuConfig {
            name: format!("GPU-{threads}"),
            threads,
            ..Default::default()
        }
    }
}

/// The SIMT execution model.
#[derive(Debug, Clone, Default)]
pub struct GpuModel {
    config: GpuConfig,
}

impl GpuModel {
    /// Creates a model with the default 256-thread configuration.
    pub fn new() -> Self {
        GpuModel::default()
    }

    /// Creates a model with explicit parameters.
    pub fn with_config(config: GpuConfig) -> Self {
        GpuModel { config }
    }

    /// The model parameters.
    pub fn config(&self) -> &GpuConfig {
        &self.config
    }

    /// Assigns every working-array element (inputs then op results) to a
    /// shared-memory bank.  A greedy colouring spreads the operands of
    /// consecutive operations across banks, mimicking the paper's
    /// graph-colouring allocation that minimises warp bank conflicts.
    fn assign_banks(&self, ops: &OpList) -> Vec<usize> {
        let banks = self.config.shared_banks;
        let total = ops.num_inputs() + ops.num_ops();
        let mut bank_of = vec![usize::MAX; total];
        let mut next = 0usize;
        // Inputs round-robin.
        for (i, slot) in bank_of.iter_mut().enumerate().take(ops.num_inputs()) {
            *slot = i % banks;
            next = (i + 1) % banks;
        }
        // Results: avoid the banks of the operation's own operands, then
        // round-robin.
        let index_of = |r: OperandRef| match r {
            OperandRef::Input(i) => i as usize,
            OperandRef::Op(i) => ops.num_inputs() + i as usize,
        };
        for (i, op) in ops.ops().iter().enumerate() {
            let avoid = [bank_of[index_of(op.lhs)], bank_of[index_of(op.rhs)]];
            let mut chosen = next;
            for _ in 0..banks {
                if !avoid.contains(&chosen) {
                    break;
                }
                chosen = (chosen + 1) % banks;
            }
            bank_of[ops.num_inputs() + i] = chosen;
            next = (chosen + 1) % banks;
        }
        bank_of
    }

    /// Counts cycles for one inference pass over `ops`.
    ///
    /// Convenience wrapper that re-derives the dependency groups and bank
    /// assignment; the [`Backend::compile`] path computes those once and
    /// reuses them for the whole lifetime of the compiled artifact.
    pub fn model_cycles(&self, ops: &OpList) -> PerfReport {
        let levels = Levelization::from_op_list(ops);
        let bank_of = self.assign_banks(ops);
        self.model_cycles_with(ops, &levels, &bank_of)
    }

    /// Counts cycles for one inference pass using precomputed dependency
    /// groups and bank assignment.
    fn model_cycles_with(
        &self,
        ops: &OpList,
        levels: &Levelization,
        bank_of: &[usize],
    ) -> PerfReport {
        let cfg = &self.config;
        let n = ops.num_ops();
        if n == 0 {
            return PerfReport {
                platform: cfg.name.clone(),
                queries: 1,
                cycles: 1,
                ..Default::default()
            };
        }
        let index_of = |r: OperandRef| match r {
            OperandRef::Input(i) => i as usize,
            OperandRef::Op(i) => ops.num_inputs() + i as usize,
        };

        let mut cycles: u64 = 0;
        let mut shared_accesses: u64 = 0;
        let mut stall_cycles: u64 = 0;
        for group in levels.iter() {
            // One barrier per group (the paper's sync bottleneck).
            cycles += cfg.sync_overhead;
            stall_cycles += cfg.sync_overhead;
            // Threads take ops in order; each chunk of `threads` ops is one
            // pass over the block, executed warp by warp with at most
            // `concurrent_warps` warps in flight.
            for chunk in group.chunks(cfg.threads.max(1)) {
                // Shared memory is a block-wide resource: 32 banks serve the
                // whole chunk, so its bandwidth bounds the chunk from below.
                let block_bandwidth_cycles = (3 * chunk.len()).div_ceil(cfg.shared_banks) as u64;
                let mut warp_costs: Vec<u64> = Vec::new();
                for warp_ops in chunk.chunks(cfg.warp_size) {
                    // Shared-memory serialisation: reads of both operands and
                    // the write of the result, phase by phase.
                    let mut phases = [
                        vec![0u32; cfg.shared_banks],
                        vec![0u32; cfg.shared_banks],
                        vec![0u32; cfg.shared_banks],
                    ];
                    let mut has_sum = false;
                    let mut has_product = false;
                    for &op_idx in warp_ops {
                        let op = ops.ops()[op_idx];
                        phases[0][bank_of[index_of(op.lhs)]] += 1;
                        phases[1][bank_of[index_of(op.rhs)]] += 1;
                        phases[2][bank_of[ops.num_inputs() + op_idx]] += 1;
                        match op.kind {
                            // Max and log-sum-exp ops take the sum side of
                            // the paper's sum/product divergence split: the
                            // max-product and log-domain kernels diverge
                            // exactly where the sum-product kernel does.  (A
                            // log-domain program's products lower to Add, so
                            // it never mixes both sides in one warp — its
                            // transcendental cost is modelled through
                            // instructions_per_op, not divergence.)
                            OpKind::Add | OpKind::Max | OpKind::LogAdd => has_sum = true,
                            // The sampler comparator is a one-instruction
                            // select: cost-model it with the product side
                            // (no transcendental, no extra divergence).
                            OpKind::Mul | OpKind::Sam => has_product = true,
                        }
                        shared_accesses += 3;
                    }
                    let shared_cycles: u64 = phases
                        .iter()
                        .map(|p| u64::from(*p.iter().max().unwrap_or(&1)))
                        .sum();
                    let mut issue = cfg.instructions_per_op;
                    if has_sum && has_product {
                        issue *= cfg.divergence_penalty;
                    }
                    warp_costs.push(shared_cycles.max(issue.ceil() as u64));
                }
                // Warps beyond the concurrent capacity run back to back, and
                // the whole chunk can never beat the shared-memory bandwidth.
                let batches = warp_costs.len().div_ceil(cfg.concurrent_warps.max(1));
                let max_cost = warp_costs.iter().copied().max().unwrap_or(0);
                cycles += (max_cost * batches as u64).max(block_bandwidth_cycles);
            }
        }

        PerfReport {
            platform: cfg.name.clone(),
            queries: 1,
            cycles: cycles.max(1),
            source_ops: n as u64,
            issued_ops: n as u64,
            instructions: (n as f64 * cfg.instructions_per_op) as u64,
            stall_cycles,
            memory_loads: ops.num_inputs() as u64,
            memory_stores: 1,
            writebacks: n as u64,
            operand_reads: shared_accesses,
        }
    }
}

/// The GPU model's compiled artifact: the kernel-launch preparation done
/// once per circuit — dependency-group decomposition, shared-memory bank
/// assignment, the input recipe, and the modelled per-query cost (the SIMT
/// schedule is evidence-independent, so the whole cost model runs at compile
/// time).
#[derive(Debug, Clone)]
pub struct GpuCompiled {
    ops: OpList,
    levels: Levelization,
    recipe: InputRecipe,
    perf_per_query: PerfReport,
}

impl GpuCompiled {
    /// The flattened program this artifact executes.
    pub fn ops(&self) -> &OpList {
        &self.ops
    }

    /// The dependency groups the kernel synchronises between.
    pub fn levels(&self) -> &Levelization {
        &self.levels
    }

    /// The modelled cost of one inference pass.
    pub fn perf_per_query(&self) -> &PerfReport {
        &self.perf_per_query
    }
}

impl Backend for GpuModel {
    type Compiled = GpuCompiled;
    type Scratch = ();

    fn name(&self) -> String {
        self.config.name.clone()
    }

    fn compile(&self, ops: &OpList) -> Result<GpuCompiled, BackendError> {
        let levels = Levelization::from_op_list(ops);
        let bank_of = self.assign_banks(ops);
        let perf_per_query = self.model_cycles_with(ops, &levels, &bank_of);
        Ok(GpuCompiled {
            recipe: ops.input_recipe(),
            perf_per_query,
            levels,
            ops: ops.clone(),
        })
    }

    fn execute_batch(
        &self,
        compiled: &GpuCompiled,
        batch: &EvidenceBatch,
        buffers: &mut ExecBuffers,
        _scratch: &mut (),
    ) -> Result<BatchResult, BackendError> {
        let ops = &compiled.ops;
        crate::backend::execute_recipe_batch(
            &compiled.recipe,
            ops.num_ops(),
            &compiled.perf_per_query,
            &self.config.name,
            batch,
            buffers,
            |inputs, results| {
                // Execute group by group exactly like the kernel would.  Every
                // arithmetic result is rounded to the program's emulated
                // precision (`round_to` is the identity for F64, keeping the
                // full-precision path bit-for-bit).
                let precision = ops.precision();
                for group in compiled.levels.iter() {
                    for &i in group {
                        let op = ops.ops()[i];
                        let value = |r: OperandRef, results: &[f64]| match r {
                            OperandRef::Input(k) => inputs[k as usize],
                            OperandRef::Op(k) => results[k as usize],
                        };
                        let raw = match op.kind {
                            OpKind::Add => value(op.lhs, results) + value(op.rhs, results),
                            OpKind::Mul => value(op.lhs, results) * value(op.rhs, results),
                            OpKind::Max => value(op.lhs, results).max(value(op.rhs, results)),
                            OpKind::LogAdd => spn_core::numeric::log_sum_exp(
                                value(op.lhs, results),
                                value(op.rhs, results),
                            ),
                            OpKind::Sam => {
                                f64::from(u8::from(value(op.lhs, results) < value(op.rhs, results)))
                            }
                        };
                        results[i] = spn_core::precision::round_to(precision, raw);
                    }
                }
                match ops.output() {
                    OperandRef::Input(k) => inputs[k as usize],
                    OperandRef::Op(k) => results[k as usize],
                }
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use spn_core::random::{random_spn, RandomSpnConfig};

    fn big_ops() -> OpList {
        let mut rng = StdRng::seed_from_u64(43);
        let spn = random_spn(&RandomSpnConfig::with_vars(200), &mut rng);
        OpList::from_spn(&spn)
    }

    #[test]
    fn executes_and_matches_reference() {
        let mut rng = StdRng::seed_from_u64(44);
        let spn = random_spn(&RandomSpnConfig::with_vars(10), &mut rng);
        let ops = OpList::from_spn(&spn);
        let gpu = GpuModel::new();
        let compiled = gpu.compile(&ops).unwrap();
        let mut batch = EvidenceBatch::marginals(10, 1);
        batch.push_assignment(&[true; 10]).unwrap();
        let result = gpu
            .execute_batch(&compiled, &batch, &mut ExecBuffers::new(), &mut ())
            .unwrap();
        for (q, value) in result.values.iter().enumerate() {
            let expected = spn.evaluate(&batch.to_evidence(q)).unwrap();
            assert!((value - expected).abs() < 1e-9, "query {q}");
        }
        assert_eq!(result.perf.queries, 2);
        assert_eq!(result.perf.cycles, 2 * compiled.perf_per_query().cycles);
        assert!(result.perf.cycles > 0);
    }

    #[test]
    fn single_thread_is_slower_than_the_full_block() {
        let ops = big_ops();
        let one = GpuModel::with_config(GpuConfig::with_threads(1)).model_cycles(&ops);
        let full = GpuModel::with_config(GpuConfig::with_threads(256)).model_cycles(&ops);
        assert!(full.ops_per_cycle() > one.ops_per_cycle() * 2.0);
    }

    #[test]
    fn thread_scaling_is_sublinear() {
        let ops = big_ops();
        let t32 = GpuModel::with_config(GpuConfig::with_threads(32)).model_cycles(&ops);
        let t256 = GpuModel::with_config(GpuConfig::with_threads(256)).model_cycles(&ops);
        let speedup = t256.ops_per_cycle() / t32.ops_per_cycle();
        assert!(
            speedup < 8.0,
            "8x the threads must give less than 8x the throughput, got {speedup}"
        );
        assert!(speedup > 1.0);
    }

    #[test]
    fn throughput_never_exceeds_the_shared_memory_bandwidth_ceiling() {
        // Wide, regular random SPNs are the GPU's best case; even there the
        // 32-bank shared memory (3 accesses per op) caps the throughput.
        // Irregular benchmark circuits land near 1 ops/cycle (asserted by the
        // figure-shape integration tests).
        let ops = big_ops();
        let report = GpuModel::new().model_cycles(&ops);
        let throughput = report.ops_per_cycle();
        let ceiling = 32.0 / 3.0;
        assert!(
            throughput > 0.1 && throughput <= ceiling,
            "GPU model throughput {throughput} outside (0.1, {ceiling}]"
        );
    }

    #[test]
    fn sync_overhead_dominates_for_deep_narrow_circuits() {
        // A chain SPN has one op per group: almost all time is barriers.
        let mut b = spn_core::SpnBuilder::new(1);
        let mut prev = b.indicator(spn_core::VarId(0), true);
        for _ in 0..50 {
            let c = b.constant(1.0);
            prev = b.product(vec![prev, c]).unwrap();
        }
        let spn = b.finish(prev).unwrap();
        let ops = OpList::from_spn(&spn);
        let report = GpuModel::new().model_cycles(&ops);
        assert!(report.stall_cycles as f64 / report.cycles as f64 > 0.8);
    }

    #[test]
    fn bank_assignment_avoids_own_operand_banks() {
        let ops = big_ops();
        let model = GpuModel::new();
        let banks = model.assign_banks(&ops);
        for (i, op) in ops.ops().iter().enumerate().take(500) {
            let index_of = |r: OperandRef| match r {
                OperandRef::Input(k) => k as usize,
                OperandRef::Op(k) => ops.num_inputs() + k as usize,
            };
            let own = banks[ops.num_inputs() + i];
            assert_ne!(own, banks[index_of(op.lhs)]);
            assert_ne!(own, banks[index_of(op.rhs)]);
        }
    }

    #[test]
    fn empty_program_costs_one_cycle() {
        let mut b = spn_core::SpnBuilder::new(1);
        let x = b.indicator(spn_core::VarId(0), true);
        let spn = b.finish(x).unwrap();
        let report = GpuModel::new().model_cycles(&OpList::from_spn(&spn));
        assert_eq!(report.cycles, 1);
    }
}
