//! Common interface of all execution platforms.

use spn_core::flatten::OpList;
use spn_core::Evidence;
use spn_processor::PerfReport;

/// An execution platform that can run a flattened SPN and report throughput.
///
/// Implementations both *execute* the program (so results can be checked
/// against the reference evaluator) and *model* its cost in cycles.
pub trait Platform {
    /// Short name used in tables and figures (e.g. `"CPU"`).
    fn name(&self) -> String;

    /// Executes `ops` under `evidence`, returning the root value and the
    /// performance counters of one inference pass.
    ///
    /// # Errors
    ///
    /// Returns an error when the evidence does not match the program or the
    /// platform cannot execute it.
    fn execute(
        &self,
        ops: &OpList,
        evidence: &Evidence,
    ) -> Result<(f64, PerfReport), Box<dyn std::error::Error>>;
}
