//! The custom SPN processor as a two-phase execution backend.
//!
//! Compilation runs the full `spn-compiler` pipeline (tiling, list
//! scheduling, bank allocation) once and caches the resulting
//! [`CompiledArtifact`]; execution streams evidence batches through a
//! cycle-accurate [`MultiCoreProcessor`] via
//! [`MultiCoreProcessor::run_batch_sharded`], so the VLIW program, schedule
//! and input recipe are all amortised across queries — the paper's
//! deployment model.
//!
//! The backend defaults to one core, where sharded execution is bit-for-bit
//! (values *and* perf counters) the plain single-core batch run.  With
//! [`ProcessorBackend::with_cores`] the same compiled program is sharded
//! over N simulated cores behind a shared parameter memory, and the
//! reported perf takes the makespan (the busiest core) as its cycle count.

use spn_compiler::{CompiledArtifact, Compiler};
use spn_core::batch::EvidenceBatch;
use spn_core::flatten::OpList;
use spn_processor::{MultiCoreConfig, MultiCoreProcessor, ProcessorConfig, SimState};

use crate::backend::{Backend, BackendError, BatchResult, ExecBuffers};
use crate::options::EngineOptions;

/// Compiler plus cycle-accurate simulator for one processor configuration
/// (optionally replicated across N cores).
#[derive(Debug, Clone)]
pub struct ProcessorBackend {
    compiler: Compiler,
    processor: MultiCoreProcessor,
}

/// Reusable simulator storage of a [`ProcessorBackend`]: one [`SimState`]
/// per simulated core, grown on first use.
#[derive(Debug, Clone, Default)]
pub struct ProcessorScratch {
    states: Vec<SimState>,
}

impl ProcessorBackend {
    /// Creates a single-core backend targeting `config`.
    ///
    /// # Errors
    ///
    /// Returns an error when the configuration is structurally invalid.
    pub fn new(config: ProcessorConfig) -> Result<Self, BackendError> {
        ProcessorBackend::with_cores(config, 1)
    }

    /// Creates a backend simulating `cores` copies of `config` behind a
    /// default shared memory and interconnect.
    ///
    /// # Errors
    ///
    /// Returns an error when the configuration is structurally invalid or
    /// `cores` is zero.
    pub fn with_cores(config: ProcessorConfig, cores: usize) -> Result<Self, BackendError> {
        ProcessorBackend::with_multi_core_config(MultiCoreConfig::new(cores, config))
    }

    /// Creates a backend from a fully explicit multi-core configuration.
    ///
    /// # Errors
    ///
    /// Returns an error when the configuration is structurally invalid.
    pub fn with_multi_core_config(config: MultiCoreConfig) -> Result<Self, BackendError> {
        let processor = MultiCoreProcessor::new(config.clone())?;
        Ok(ProcessorBackend {
            compiler: Compiler::new(config.core),
            processor,
        })
    }

    /// Creates a single-core backend with an explicit compiler (custom
    /// options).
    ///
    /// # Errors
    ///
    /// Returns an error when the compiler's target configuration is invalid.
    pub fn with_compiler(compiler: Compiler) -> Result<Self, BackendError> {
        let processor =
            MultiCoreProcessor::new(MultiCoreConfig::new(1, compiler.config().clone()))?;
        Ok(ProcessorBackend {
            compiler,
            processor,
        })
    }

    /// The Ptree preset (2 trees × 4 levels, 30 PEs).
    ///
    /// # Panics
    ///
    /// Never panics: the preset configuration is valid by construction.
    pub fn ptree() -> Self {
        ProcessorBackend::new(ProcessorConfig::ptree()).expect("ptree preset is valid")
    }

    /// The Pvect preset (the lowest PE level only, 16 PEs).
    ///
    /// # Panics
    ///
    /// Never panics: the preset configuration is valid by construction.
    pub fn pvect() -> Self {
        ProcessorBackend::new(ProcessorConfig::pvect()).expect("pvect preset is valid")
    }

    /// The per-core processor configuration this backend targets.
    pub fn config(&self) -> &ProcessorConfig {
        self.compiler.config()
    }

    /// The full multi-core configuration (core count, shared memory,
    /// interconnect).
    pub fn multi_core_config(&self) -> &MultiCoreConfig {
        self.processor.config()
    }

    /// Number of simulated cores batches are sharded over.
    pub fn cores(&self) -> usize {
        self.processor.config().cores
    }
}

impl Backend for ProcessorBackend {
    type Compiled = CompiledArtifact;
    /// The simulator's reusable storage; empty until the first batch runs.
    type Scratch = ProcessorScratch;

    fn name(&self) -> String {
        self.processor.config().name()
    }

    /// Takes [`EngineOptions::cores`] as the simulated core count,
    /// rebuilding the multi-core simulator around the same per-core
    /// configuration; other knobs are not the processor's.
    fn configure(&mut self, options: &EngineOptions) -> Result<(), BackendError> {
        if let Some(cores) = options.cores {
            if cores != self.cores() {
                *self = ProcessorBackend::with_cores(self.config().clone(), cores)?;
            }
        }
        Ok(())
    }

    fn compile(&self, ops: &OpList) -> Result<CompiledArtifact, BackendError> {
        Ok(self.compiler.compile_op_list(ops.clone())?)
    }

    fn execute_batch(
        &self,
        compiled: &CompiledArtifact,
        batch: &EvidenceBatch,
        buffers: &mut ExecBuffers,
        scratch: &mut ProcessorScratch,
    ) -> Result<BatchResult, BackendError> {
        compiled.fill_batch_inputs(batch, &mut buffers.inputs)?;
        // Reuse the simulator storage (register file, data memory, image
        // buffer) across batches; the runner transparently re-sizes it when
        // this compiled program needs more than the cached states provide.
        let run = self.processor.run_batch_sharded(
            &compiled.program,
            &buffers.inputs,
            batch.len(),
            &mut scratch.states,
        )?;
        Ok(BatchResult {
            values: run.outputs,
            perf: run.perf,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use spn_core::random::{random_spn, RandomSpnConfig};
    use spn_core::Evidence;

    #[test]
    fn compiles_once_and_serves_batches() {
        let mut rng = StdRng::seed_from_u64(46);
        let spn = random_spn(&RandomSpnConfig::with_vars(11), &mut rng);
        let ops = spn_core::flatten::OpList::from_spn(&spn);
        let backend = ProcessorBackend::ptree();
        let compiled = backend.compile(&ops).unwrap();
        let mut buffers = ExecBuffers::new();
        let mut scratch = ProcessorScratch::default();

        let mut batch = EvidenceBatch::new(11);
        batch.push_marginal();
        batch.push_assignment(&[true; 11]).unwrap();
        let mut partial = Evidence::marginal(11);
        partial.observe(3, false);
        batch.push(&partial).unwrap();

        let result = backend
            .execute_batch(&compiled, &batch, &mut buffers, &mut scratch)
            .unwrap();
        assert_eq!(result.perf.queries, 3);
        for (q, value) in result.values.iter().enumerate() {
            let expected = spn.evaluate(&batch.to_evidence(q)).unwrap();
            assert!(
                (value - expected).abs() <= 1e-9 * expected.abs().max(1e-12),
                "query {q}: {value} vs {expected}"
            );
        }
    }

    #[test]
    fn cached_sim_state_survives_batches_and_resizes_for_bigger_programs() {
        let backend = ProcessorBackend::ptree();
        let mut buffers = ExecBuffers::new();
        let mut scratch = ProcessorScratch::default();
        let mut rng = StdRng::seed_from_u64(47);
        let small = random_spn(&RandomSpnConfig::with_vars(6), &mut rng);
        let large = random_spn(&RandomSpnConfig::with_vars(40), &mut rng);
        // Alternate between two differently-sized programs through the SAME
        // buffers: the cached SimState must be reused when it fits and
        // transparently re-sized when it does not, never corrupting values.
        for spn in [&small, &large, &small, &large] {
            let ops = spn_core::flatten::OpList::from_spn(spn);
            let compiled = backend.compile(&ops).unwrap();
            let batch = EvidenceBatch::marginals(spn.num_vars(), 2);
            let result = backend
                .execute_batch(&compiled, &batch, &mut buffers, &mut scratch)
                .unwrap();
            let expected = spn.evaluate(&Evidence::marginal(spn.num_vars())).unwrap();
            for value in &result.values {
                assert!((value - expected).abs() <= 1e-9 * expected.abs().max(1e-12));
            }
        }
    }

    #[test]
    fn both_presets_expose_their_config() {
        assert_eq!(ProcessorBackend::ptree().config().name, "Ptree");
        assert_eq!(ProcessorBackend::pvect().config().name, "Pvect");
        assert_eq!(Backend::name(&ProcessorBackend::ptree()), "Ptree");
        assert_eq!(ProcessorBackend::ptree().cores(), 1);
    }

    #[test]
    fn multi_core_backend_matches_single_core_values() {
        let mut rng = StdRng::seed_from_u64(48);
        let spn = random_spn(&RandomSpnConfig::with_vars(10), &mut rng);
        let ops = spn_core::flatten::OpList::from_spn(&spn);
        let single = ProcessorBackend::ptree();
        let quad = ProcessorBackend::with_cores(ProcessorConfig::ptree(), 4).unwrap();
        assert_eq!(quad.cores(), 4);
        assert_eq!(Backend::name(&quad), "Ptreex4");

        let compiled_s = single.compile(&ops).unwrap();
        let compiled_q = quad.compile(&ops).unwrap();
        let batch = EvidenceBatch::marginals(10, 9);
        let mut buffers = ExecBuffers::new();
        let (mut ss, mut sq) = (ProcessorScratch::default(), ProcessorScratch::default());
        let rs = single
            .execute_batch(&compiled_s, &batch, &mut buffers, &mut ss)
            .unwrap();
        let rq = quad
            .execute_batch(&compiled_q, &batch, &mut buffers, &mut sq)
            .unwrap();
        assert_eq!(rs.values.len(), rq.values.len());
        for (a, b) in rs.values.iter().zip(&rq.values) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        // Four cores split nine queries 3/2/2/2, so the makespan is roughly
        // a third of the serial batch.
        assert!(rq.perf.cycles < rs.perf.cycles);
        assert_eq!(rq.perf.queries, 9);
    }
}
