//! The custom SPN processor as a two-phase execution backend.
//!
//! Compilation runs the full `spn-compiler` pipeline (tiling, list
//! scheduling, bank allocation) once and caches the resulting
//! [`CompiledArtifact`]; execution streams evidence batches through one
//! cycle-accurate simulator instance via [`Processor::run_batch`], so the
//! VLIW program, schedule and input recipe are all amortised across queries
//! — the paper's deployment model.

use spn_compiler::{CompiledArtifact, Compiler};
use spn_core::batch::EvidenceBatch;
use spn_core::flatten::OpList;
use spn_processor::{Processor, ProcessorConfig, SimState};

use crate::backend::{Backend, BackendError, BatchResult, ExecBuffers};

/// Compiler plus cycle-accurate simulator for one processor configuration.
#[derive(Debug, Clone)]
pub struct ProcessorBackend {
    compiler: Compiler,
    processor: Processor,
}

impl ProcessorBackend {
    /// Creates a backend targeting `config`.
    ///
    /// # Errors
    ///
    /// Returns an error when the configuration is structurally invalid.
    pub fn new(config: ProcessorConfig) -> Result<Self, BackendError> {
        let processor = Processor::new(config.clone())?;
        Ok(ProcessorBackend {
            compiler: Compiler::new(config),
            processor,
        })
    }

    /// Creates a backend with an explicit compiler (custom options).
    ///
    /// # Errors
    ///
    /// Returns an error when the compiler's target configuration is invalid.
    pub fn with_compiler(compiler: Compiler) -> Result<Self, BackendError> {
        let processor = Processor::new(compiler.config().clone())?;
        Ok(ProcessorBackend {
            compiler,
            processor,
        })
    }

    /// The Ptree preset (2 trees × 4 levels, 30 PEs).
    ///
    /// # Panics
    ///
    /// Never panics: the preset configuration is valid by construction.
    pub fn ptree() -> Self {
        ProcessorBackend::new(ProcessorConfig::ptree()).expect("ptree preset is valid")
    }

    /// The Pvect preset (the lowest PE level only, 16 PEs).
    ///
    /// # Panics
    ///
    /// Never panics: the preset configuration is valid by construction.
    pub fn pvect() -> Self {
        ProcessorBackend::new(ProcessorConfig::pvect()).expect("pvect preset is valid")
    }

    /// The processor configuration this backend targets.
    pub fn config(&self) -> &ProcessorConfig {
        self.compiler.config()
    }
}

impl Backend for ProcessorBackend {
    type Compiled = CompiledArtifact;
    /// The simulator's reusable storage; `None` until the first batch runs.
    type Scratch = Option<SimState>;

    fn name(&self) -> String {
        self.config().name.clone()
    }

    fn compile(&self, ops: &OpList) -> Result<CompiledArtifact, BackendError> {
        Ok(self.compiler.compile_op_list(ops.clone())?)
    }

    fn execute_batch(
        &self,
        compiled: &CompiledArtifact,
        batch: &EvidenceBatch,
        buffers: &mut ExecBuffers,
        scratch: &mut Option<SimState>,
    ) -> Result<BatchResult, BackendError> {
        compiled.fill_batch_inputs(batch, &mut buffers.inputs)?;
        // Reuse the simulator storage (register file, data memory, image
        // buffer) across batches; run_with transparently re-sizes it when
        // this compiled program needs more than the cached state provides.
        let state = scratch.get_or_insert_with(|| self.processor.state_for(&compiled.program));
        let run = self.processor.run_batch_with(
            &compiled.program,
            &buffers.inputs,
            batch.len(),
            state,
        )?;
        Ok(BatchResult {
            values: run.outputs,
            perf: run.perf,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use spn_core::random::{random_spn, RandomSpnConfig};
    use spn_core::Evidence;

    #[test]
    fn compiles_once_and_serves_batches() {
        let mut rng = StdRng::seed_from_u64(46);
        let spn = random_spn(&RandomSpnConfig::with_vars(11), &mut rng);
        let ops = spn_core::flatten::OpList::from_spn(&spn);
        let backend = ProcessorBackend::ptree();
        let compiled = backend.compile(&ops).unwrap();
        let mut buffers = ExecBuffers::new();
        let mut scratch = None;

        let mut batch = EvidenceBatch::new(11);
        batch.push_marginal();
        batch.push_assignment(&[true; 11]).unwrap();
        let mut partial = Evidence::marginal(11);
        partial.observe(3, false);
        batch.push(&partial).unwrap();

        let result = backend
            .execute_batch(&compiled, &batch, &mut buffers, &mut scratch)
            .unwrap();
        assert_eq!(result.perf.queries, 3);
        for (q, value) in result.values.iter().enumerate() {
            let expected = spn.evaluate(&batch.to_evidence(q)).unwrap();
            assert!(
                (value - expected).abs() <= 1e-9 * expected.abs().max(1e-12),
                "query {q}: {value} vs {expected}"
            );
        }
    }

    #[test]
    fn cached_sim_state_survives_batches_and_resizes_for_bigger_programs() {
        let backend = ProcessorBackend::ptree();
        let mut buffers = ExecBuffers::new();
        let mut scratch = None;
        let mut rng = StdRng::seed_from_u64(47);
        let small = random_spn(&RandomSpnConfig::with_vars(6), &mut rng);
        let large = random_spn(&RandomSpnConfig::with_vars(40), &mut rng);
        // Alternate between two differently-sized programs through the SAME
        // buffers: the cached SimState must be reused when it fits and
        // transparently re-sized when it does not, never corrupting values.
        for spn in [&small, &large, &small, &large] {
            let ops = spn_core::flatten::OpList::from_spn(spn);
            let compiled = backend.compile(&ops).unwrap();
            let batch = EvidenceBatch::marginals(spn.num_vars(), 2);
            let result = backend
                .execute_batch(&compiled, &batch, &mut buffers, &mut scratch)
                .unwrap();
            let expected = spn.evaluate(&Evidence::marginal(spn.num_vars())).unwrap();
            for value in &result.values {
                assert!((value - expected).abs() <= 1e-9 * expected.abs().max(1e-12));
            }
        }
    }

    #[test]
    fn both_presets_expose_their_config() {
        assert_eq!(ProcessorBackend::ptree().config().name, "Ptree");
        assert_eq!(ProcessorBackend::pvect().config().name, "Pvect");
        assert_eq!(Backend::name(&ProcessorBackend::ptree()), "Ptree");
    }
}
