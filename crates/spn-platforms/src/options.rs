//! Engine construction options.
//!
//! [`EngineOptions`] is the single configuration surface of
//! [`Engine::new`](crate::Engine::new): it names the numeric domain and the
//! emulated PE precision the circuit is lowered into, plus the per-backend
//! tuning knobs that used to require backend-specific constructors (CPU lane
//! width, processor core count).  Backends receive the options through
//! [`Backend::configure`](crate::Backend::configure) before compilation and
//! apply whichever fields concern them.

use spn_core::flatten::OpList;
use spn_core::{NumericMode, Precision, Spn};

/// How much static analysis [`Engine::new`](crate::Engine::new) runs before
/// compiling (see [`spn_core::analysis`]).
///
/// The default is build-dependent: [`VerifyLevel::Errors`] in debug builds,
/// [`VerifyLevel::Off`] in release builds — debug and test runs catch broken
/// structures at construction for free, while release serving paths that
/// validated their models at load time pay nothing per engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum VerifyLevel {
    /// Skip verification entirely.
    Off,
    /// Run the structural lints and fail construction with
    /// [`SpnError::Verification`](spn_core::SpnError::Verification) when any
    /// [`Severity::Error`](spn_core::Severity::Error) diagnostic is found.
    /// Warnings (unnormalized weights, predicted underflow) are tolerated.
    Errors,
    /// Like [`VerifyLevel::Errors`], but additionally treat every `Warn`
    /// diagnostic — including numeric range findings such as guaranteed
    /// linear-domain underflow — as fatal.
    Strict,
}

impl Default for VerifyLevel {
    /// [`VerifyLevel::Errors`] in debug builds, [`VerifyLevel::Off`] in
    /// release builds.
    fn default() -> Self {
        if cfg!(debug_assertions) {
            VerifyLevel::Errors
        } else {
            VerifyLevel::Off
        }
    }
}

/// How to lower and execute a circuit: numeric domain, emulated PE
/// precision, and backend tuning knobs.
///
/// Build with the fluent setters from [`EngineOptions::default`] (linear
/// domain, [`Precision::F64`], backend defaults untouched):
///
/// ```
/// use spn_core::{NumericMode, Precision};
/// use spn_platforms::EngineOptions;
///
/// let options = EngineOptions::default()
///     .mode(NumericMode::Log)
///     .precision(Precision::E8M10)
///     .lanes(4);
/// assert_eq!(options.mode, NumericMode::Log);
/// assert_eq!(options.cores, None);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineOptions {
    /// Numeric domain the circuit computes in.  In [`NumericMode::Log`]
    /// every value the engine returns is a natural log: joint/marginal
    /// probabilities, MAP circuit values, and conditionals (computed as a
    /// log-space subtraction instead of a division, so deep circuits cannot
    /// fail by denominator underflow).
    pub mode: NumericMode,
    /// Emulated PE arithmetic format.  With [`Precision::F64`] results are
    /// bit-for-bit the native-double reference on every backend; reduced
    /// precisions quantize every intermediate of every kernel — the software
    /// model of the paper's reduced-width PE datapath.
    pub precision: Precision,
    /// Lane-block width of the CPU model's execute-many path (`None` keeps
    /// the backend's own setting; see
    /// [`CpuModel::with_lanes`](crate::CpuModel::with_lanes) for the
    /// normalisation rules).  Ignored by other backends.
    pub lanes: Option<usize>,
    /// Simulated core count of the processor backend (`None` keeps the
    /// backend's own setting; see
    /// [`ProcessorBackend::with_cores`](crate::ProcessorBackend::with_cores)).
    /// Ignored by other backends.
    pub cores: Option<usize>,
    /// Static-analysis level run by [`Engine::new`](crate::Engine::new)
    /// before compilation.  Defaults to [`VerifyLevel::Errors`] in debug
    /// builds and [`VerifyLevel::Off`] in release builds.
    pub verify: VerifyLevel,
}

impl Default for EngineOptions {
    /// Linear domain, native `f64`, backend defaults untouched.
    fn default() -> Self {
        EngineOptions {
            mode: NumericMode::Linear,
            precision: Precision::F64,
            lanes: None,
            cores: None,
            verify: VerifyLevel::default(),
        }
    }
}

impl EngineOptions {
    /// [`EngineOptions::default`], spelled as a constructor.
    pub fn new() -> EngineOptions {
        EngineOptions::default()
    }

    /// Selects the numeric domain.
    pub fn mode(mut self, mode: NumericMode) -> EngineOptions {
        self.mode = mode;
        self
    }

    /// Selects the emulated PE arithmetic format.
    pub fn precision(mut self, precision: Precision) -> EngineOptions {
        self.precision = precision;
        self
    }

    /// Sets the CPU model's lane-block width.
    pub fn lanes(mut self, lanes: usize) -> EngineOptions {
        self.lanes = Some(lanes);
        self
    }

    /// Sets the processor backend's simulated core count.
    pub fn cores(mut self, cores: usize) -> EngineOptions {
        self.cores = Some(cores);
        self
    }

    /// Selects how much static analysis [`Engine::new`](crate::Engine::new)
    /// runs before compiling.
    pub fn verify(mut self, verify: VerifyLevel) -> EngineOptions {
        self.verify = verify;
        self
    }

    /// Flattens `spn` and lowers it into this option set's numeric domain
    /// and precision — the program [`Engine::new`](crate::Engine::new)
    /// compiles.
    pub fn lower(&self, spn: &Spn) -> OpList {
        OpList::from_spn(spn)
            .with_mode(self.mode)
            .with_precision(self.precision)
    }
}
