//! The compile-once / execute-many inference engine.
//!
//! [`Engine`] binds a [`Backend`] to one compiled circuit and owns the
//! reusable [`ExecBuffers`], so callers get the two-phase execution model
//! through one handle: construct once (compilation happens here), then
//! stream [`EvidenceBatch`]es through [`Engine::execute_batch`] with zero
//! per-query allocation.  Single-query [`Engine::execute`] is a thin
//! convenience wrapper over a one-element batch.

use spn_core::batch::EvidenceBatch;
use spn_core::flatten::OpList;
use spn_core::{Evidence, Spn};
use spn_processor::PerfReport;

use crate::backend::{Backend, BackendError, BatchResult, ExecBuffers};

/// A backend bound to one compiled circuit, ready to serve queries.
///
/// ```
/// use spn_core::{random::{random_spn, RandomSpnConfig}, EvidenceBatch};
/// use spn_platforms::{CpuModel, Engine};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// # fn main() -> Result<(), spn_platforms::BackendError> {
/// let spn = random_spn(&RandomSpnConfig::with_vars(8), &mut StdRng::seed_from_u64(1));
/// let mut engine = Engine::from_spn(CpuModel::new(), &spn)?;
///
/// let batch = EvidenceBatch::marginals(8, 64);
/// let result = engine.execute_batch(&batch)?;
/// assert_eq!(result.values.len(), 64);
/// assert!(result.values.iter().all(|v| (v - 1.0).abs() < 1e-9));
/// assert_eq!(result.perf.queries, 64);
/// # Ok(())
/// # }
/// ```
pub struct Engine<B: Backend> {
    backend: B,
    compiled: B::Compiled,
    buffers: ExecBuffers,
    scratch: B::Scratch,
    /// Scratch one-query batch backing [`Engine::execute`].
    single: EvidenceBatch,
}

impl<B: Backend> Engine<B> {
    /// Compiles `ops` for `backend` (the expensive, once-per-circuit phase).
    ///
    /// # Errors
    ///
    /// Returns an error when the backend cannot compile the program.
    pub fn new(backend: B, ops: &OpList) -> Result<Self, BackendError> {
        let compiled = backend.compile(ops)?;
        Ok(Engine {
            backend,
            compiled,
            buffers: ExecBuffers::new(),
            scratch: B::Scratch::default(),
            single: EvidenceBatch::new(ops.num_vars()),
        })
    }

    /// Flattens `spn` and compiles it for `backend`.
    ///
    /// # Errors
    ///
    /// Returns an error when the backend cannot compile the program.
    pub fn from_spn(backend: B, spn: &Spn) -> Result<Self, BackendError> {
        Engine::new(backend, &OpList::from_spn(spn))
    }

    /// The platform name of the underlying backend.
    pub fn name(&self) -> String {
        self.backend.name()
    }

    /// The underlying backend.
    pub fn backend(&self) -> &B {
        &self.backend
    }

    /// The compiled artifact this engine serves queries against.
    pub fn compiled(&self) -> &B::Compiled {
        &self.compiled
    }

    /// Executes every query of `batch` against the compiled circuit.
    ///
    /// # Errors
    ///
    /// Returns an error when the batch does not match the compiled program
    /// or the platform fails structurally.
    pub fn execute_batch(&mut self, batch: &EvidenceBatch) -> Result<BatchResult, BackendError> {
        self.backend
            .execute_batch(&self.compiled, batch, &mut self.buffers, &mut self.scratch)
    }

    /// Executes one query: a convenience wrapper over a one-element batch.
    ///
    /// # Errors
    ///
    /// Returns an error when the evidence does not match the compiled
    /// program or the platform fails structurally.
    pub fn execute(&mut self, evidence: &Evidence) -> Result<(f64, PerfReport), BackendError> {
        self.single.clear();
        self.single.push(evidence)?;
        let mut result = self.backend.execute_batch(
            &self.compiled,
            &self.single,
            &mut self.buffers,
            &mut self.scratch,
        )?;
        let value = result
            .values
            .pop()
            .ok_or("backend returned no value for a one-query batch")?;
        Ok((value, result.perf))
    }
}
