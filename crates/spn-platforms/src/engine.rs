//! The compile-once / execute-many inference engine.
//!
//! [`Engine`] binds a [`Backend`] to one compiled circuit and owns every
//! piece of reusable execution state — the serial [`ExecBuffers`], the
//! per-worker pool of the parallel path, and the lazily compiled max-product
//! artifact of MAP queries — so callers get the two-phase execution model
//! through one handle:
//!
//! * construct once ([`Engine::new`] / [`Engine::from_spn`]; compilation
//!   happens here),
//! * stream [`EvidenceBatch`]es through [`Engine::execute_batch`] (serial)
//!   or [`Engine::execute_batch_parallel`] (sharded across a worker pool)
//!   with zero per-query allocation,
//! * answer richer workloads through [`Engine::execute_query`] /
//!   [`Engine::execute_query_parallel`], which lower
//!   [`QueryBatch`]es (joint / marginal / MAP / conditional) onto those same
//!   batched passes.
//!
//! Single-query [`Engine::execute`] is a thin convenience wrapper over a
//! one-element batch.

use std::sync::Arc;

use spn_core::batch::EvidenceBatch;
use spn_core::flatten::OpList;
use spn_core::query::{conditional_values, MaxProductProgram, QueryBatch};
use spn_core::{Evidence, NumericMode, Precision, Spn};
use spn_processor::PerfReport;

use crate::backend::{Backend, BackendError, BatchResult, ExecBuffers, Parallelism, WorkerState};

/// The MAP half of an engine, cheaply shareable between engines: the
/// max-product program plus the backend's compiled artifact for it.
///
/// Compiled lazily on the first MAP query (or eagerly via
/// [`Engine::prepare_map`]); a model registry can lift it out of one engine
/// with [`Engine::shared_map`] and install it into sibling engines with
/// [`Engine::install_map`], so a fleet of serving workers compiles the
/// max-product variant once per circuit.
pub struct MapArtifact<B: Backend> {
    program: Arc<MaxProductProgram>,
    compiled: Arc<B::Compiled>,
}

impl<B: Backend> Clone for MapArtifact<B> {
    fn clone(&self) -> Self {
        MapArtifact {
            program: Arc::clone(&self.program),
            compiled: Arc::clone(&self.compiled),
        }
    }
}

/// Values, optional MAP assignments and accumulated counters of one query
/// batch.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryOutput {
    /// One value per query, in batch order: a probability for joint /
    /// marginal / conditional queries, the max-product circuit value for MAP
    /// queries.
    pub values: Vec<f64>,
    /// The maximising complete assignment per query; `Some` for MAP batches
    /// only.
    pub assignments: Option<Vec<Vec<bool>>>,
    /// Accumulated performance counters.  [`PerfReport::queries`] counts
    /// *circuit passes*, so a conditional batch reports two passes per
    /// logical query.
    pub perf: PerfReport,
}

/// A backend bound to one compiled circuit, ready to serve queries.
///
/// ```
/// use spn_core::{random::{random_spn, RandomSpnConfig}, EvidenceBatch};
/// use spn_platforms::{CpuModel, Engine};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// # fn main() -> Result<(), spn_platforms::BackendError> {
/// let spn = random_spn(&RandomSpnConfig::with_vars(8), &mut StdRng::seed_from_u64(1));
/// let mut engine = Engine::from_spn(CpuModel::new(), &spn)?;
///
/// let batch = EvidenceBatch::marginals(8, 64);
/// let result = engine.execute_batch(&batch)?;
/// assert_eq!(result.values.len(), 64);
/// assert!(result.values.iter().all(|v| (v - 1.0).abs() < 1e-9));
/// assert_eq!(result.perf.queries, 64);
/// # Ok(())
/// # }
/// ```
pub struct Engine<B: Backend> {
    backend: B,
    /// Reference-counted so model registries and sibling worker engines can
    /// share one compiled artifact ([`Engine::shared_compiled`]).
    compiled: Arc<B::Compiled>,
    /// The sum-product program the engine was compiled from; kept so the
    /// max-product (MAP) variant can be derived lazily.
    ops: OpList,
    buffers: ExecBuffers,
    scratch: B::Scratch,
    /// Per-worker states of the parallel path (grown on first use, then
    /// reused across batches).
    workers: Vec<WorkerState<B>>,
    /// Max-product artifact for MAP queries; compiled on first use (or
    /// installed pre-compiled via [`Engine::install_map`]).
    map: Option<MapArtifact<B>>,
    /// Scratch one-query batch backing [`Engine::execute`].
    single: EvidenceBatch,
}

impl<B: Backend> Engine<B> {
    /// Compiles `ops` for `backend` (the expensive, once-per-circuit phase).
    ///
    /// # Errors
    ///
    /// Returns an error when the backend cannot compile the program.
    pub fn new(backend: B, ops: &OpList) -> Result<Self, BackendError> {
        let compiled = Arc::new(backend.compile(ops)?);
        Ok(Engine::from_artifact(backend, ops, compiled))
    }

    /// Flattens `spn` and compiles it for `backend` (linear domain).
    ///
    /// # Errors
    ///
    /// Returns an error when the backend cannot compile the program.
    pub fn from_spn(backend: B, spn: &Spn) -> Result<Self, BackendError> {
        Engine::new(backend, &OpList::from_spn(spn))
    }

    /// Flattens `spn`, lowers it into `mode` and compiles it for `backend`.
    ///
    /// In [`NumericMode::Log`] every value the engine returns is a natural
    /// log: joint/marginal probabilities, MAP circuit values, and
    /// conditionals (computed as a log-space subtraction instead of a
    /// division, so deep circuits cannot fail by denominator underflow).
    ///
    /// # Errors
    ///
    /// Returns an error when the backend cannot compile the program.
    pub fn from_spn_with_mode(
        backend: B,
        spn: &Spn,
        mode: NumericMode,
    ) -> Result<Self, BackendError> {
        Engine::new(backend, &OpList::from_spn(spn).with_mode(mode))
    }

    /// Flattens `spn`, lowers it into `mode`, stamps it with the emulated PE
    /// arithmetic `precision` and compiles it for `backend`.
    ///
    /// With [`Precision::F64`] this is exactly [`Engine::from_spn_with_mode`]
    /// (bit-for-bit, every backend).  Reduced precisions quantize every
    /// intermediate of every kernel — the software model of the paper's
    /// reduced-width PE datapath — trading a bounded relative error (see
    /// [`Precision::unit_roundoff`]) for the narrower modelled hardware.
    ///
    /// # Errors
    ///
    /// Returns an error when the backend cannot compile the program.
    pub fn from_spn_with_precision(
        backend: B,
        spn: &Spn,
        mode: NumericMode,
        precision: Precision,
    ) -> Result<Self, BackendError> {
        Engine::new(
            backend,
            &OpList::from_spn(spn)
                .with_mode(mode)
                .with_precision(precision),
        )
    }

    /// Wraps an already compiled artifact without recompiling.
    ///
    /// This is the cheap construction path of a serving fleet: a model
    /// registry compiles (or caches) the artifact once, and every worker
    /// engine is built from an [`Arc`] clone of it — only the per-engine
    /// execution state (buffers, scratch, worker pool) is fresh.  `compiled`
    /// must be `backend`'s compilation of `ops`.
    pub fn from_artifact(backend: B, ops: &OpList, compiled: Arc<B::Compiled>) -> Self {
        Engine {
            backend,
            compiled,
            ops: ops.clone(),
            buffers: ExecBuffers::new(),
            scratch: B::Scratch::default(),
            workers: Vec::new(),
            map: None,
            single: EvidenceBatch::new(ops.num_vars()),
        }
    }

    /// The platform name of the underlying backend.
    pub fn name(&self) -> String {
        self.backend.name()
    }

    /// The underlying backend.
    pub fn backend(&self) -> &B {
        &self.backend
    }

    /// The compiled artifact this engine serves queries against.
    pub fn compiled(&self) -> &B::Compiled {
        &self.compiled
    }

    /// A shared handle to the compiled artifact (for caching it in a model
    /// registry or constructing sibling engines via
    /// [`Engine::from_artifact`]).
    pub fn shared_compiled(&self) -> Arc<B::Compiled> {
        Arc::clone(&self.compiled)
    }

    /// The max-product artifact, if it has been compiled or installed
    /// (see [`Engine::prepare_map`] / [`Engine::install_map`]).
    pub fn shared_map(&self) -> Option<MapArtifact<B>> {
        self.map.clone()
    }

    /// Installs a pre-compiled max-product artifact (e.g. one lifted from a
    /// sibling engine via [`Engine::shared_map`]), replacing any existing
    /// one.  The artifact must come from an engine over the same program and
    /// backend configuration.
    pub fn install_map(&mut self, map: MapArtifact<B>) {
        self.map = Some(map);
    }

    /// Ensures the max-product artifact exists, compiling it if needed — the
    /// eager form of what the first MAP query does lazily.
    ///
    /// # Errors
    ///
    /// Returns an error when the backend cannot compile the max-product
    /// program.
    pub fn prepare_map(&mut self) -> Result<(), BackendError> {
        self.map_plan().map(|_| ())
    }

    /// The flattened sum-product program the engine was compiled from.
    pub fn ops(&self) -> &OpList {
        &self.ops
    }

    /// The numeric domain this engine computes in (inherited from the
    /// program it was compiled from).
    pub fn mode(&self) -> NumericMode {
        self.ops.mode()
    }

    /// The emulated PE arithmetic format this engine computes in (inherited
    /// from the program it was compiled from).
    pub fn precision(&self) -> Precision {
        self.ops.precision()
    }

    /// Executes every query of `batch` against the compiled circuit.
    ///
    /// # Errors
    ///
    /// Returns an error when the batch does not match the compiled program
    /// or the platform fails structurally.
    pub fn execute_batch(&mut self, batch: &EvidenceBatch) -> Result<BatchResult, BackendError> {
        self.backend
            .execute_batch(&self.compiled, batch, &mut self.buffers, &mut self.scratch)
    }

    /// Executes one query: a convenience wrapper over a one-element batch.
    ///
    /// # Errors
    ///
    /// Returns an error when the evidence does not match the compiled
    /// program or the platform fails structurally.
    pub fn execute(&mut self, evidence: &Evidence) -> Result<(f64, PerfReport), BackendError> {
        self.single.clear();
        self.single.push(evidence)?;
        let mut result = self.backend.execute_batch(
            &self.compiled,
            &self.single,
            &mut self.buffers,
            &mut self.scratch,
        )?;
        let value = result
            .values
            .pop()
            .ok_or("backend returned no value for a one-query batch")?;
        Ok((value, result.perf))
    }

    /// Ensures the max-product artifact exists (compiling it on first use)
    /// and returns it.
    fn map_plan(&mut self) -> Result<&MapArtifact<B>, BackendError> {
        if self.map.is_none() {
            let program = MaxProductProgram::from_op_list(&self.ops);
            let compiled = Arc::new(self.backend.compile(program.ops())?);
            self.map = Some(MapArtifact {
                program: Arc::new(program),
                compiled,
            });
        }
        Ok(self.map.as_ref().expect("map plan just ensured"))
    }

    /// Recovers the maximising assignment of every query of a MAP batch by
    /// re-running the max-product program per query on the host and
    /// backtracking the argmax branches.
    fn trace_map_assignments(
        plan: &MapArtifact<B>,
        batch: &EvidenceBatch,
    ) -> Result<Vec<Vec<bool>>, BackendError> {
        plan.program.recipe().check(batch)?;
        let mut inputs = Vec::new();
        let mut results = Vec::new();
        let mut assignments = Vec::with_capacity(batch.len());
        for q in 0..batch.len() {
            plan.program.run_query(batch, q, &mut inputs, &mut results);
            assignments.push(
                plan.program
                    .trace_assignment(&inputs, &results, batch.query(q)),
            );
        }
        Ok(assignments)
    }

    /// The per-mode lowering shared by [`Engine::execute_query`] and
    /// [`Engine::execute_query_parallel`]: `exec` runs a batch against the
    /// engine's main artifact, `exec_map` against the (already ensured)
    /// max-product artifact.  A single lowering guarantees the serial and
    /// parallel query paths can never diverge in policy.
    fn lower_query(
        &mut self,
        query: &QueryBatch,
        exec: impl Fn(&mut Self, &EvidenceBatch) -> Result<BatchResult, BackendError>,
        exec_map: impl Fn(&mut Self, &EvidenceBatch) -> Result<BatchResult, BackendError>,
    ) -> Result<QueryOutput, BackendError> {
        query.validate()?;
        match query {
            QueryBatch::Joint(batch) | QueryBatch::Marginal(batch) => {
                let result = exec(self, batch)?;
                Ok(QueryOutput {
                    values: result.values,
                    assignments: None,
                    perf: result.perf,
                })
            }
            QueryBatch::Map(batch) => {
                self.map_plan()?;
                let result = exec_map(self, batch)?;
                let plan = self.map.as_ref().expect("map plan ensured");
                let assignments = Self::trace_map_assignments(plan, batch)?;
                Ok(QueryOutput {
                    values: result.values,
                    assignments: Some(assignments),
                    perf: result.perf,
                })
            }
            QueryBatch::Conditional(cond) => {
                let numerator = exec(self, cond.numerator())?;
                let denominator = exec(self, cond.denominator())?;
                let values =
                    conditional_values(self.ops.mode(), numerator.values, &denominator.values)?;
                let mut perf = numerator.perf;
                perf.merge(&denominator.perf);
                Ok(QueryOutput {
                    values,
                    assignments: None,
                    perf,
                })
            }
        }
    }

    /// Answers a [`QueryBatch`] against the compiled circuit.
    ///
    /// Every mode lowers onto the serial batched execution path:
    ///
    /// * **Joint** / **Marginal** — one [`Engine::execute_batch`] pass (joint
    ///   rows are validated to be fully observed first),
    /// * **Conditional** — two passes (numerator and denominator batches)
    ///   plus one division per query,
    /// * **Map** — one pass over the lazily compiled max-product artifact for
    ///   the values, plus a host-side argmax traceback recovering the
    ///   maximising assignments (the traceback is not part of the modelled
    ///   platform cost).
    ///
    /// ```
    /// use spn_core::{ConditionalBatch, Evidence, EvidenceBatch, QueryBatch};
    /// use spn_core::random::{random_spn, RandomSpnConfig};
    /// use spn_platforms::{CpuModel, Engine};
    /// use rand::{rngs::StdRng, SeedableRng};
    ///
    /// # fn main() -> Result<(), spn_platforms::BackendError> {
    /// let spn = random_spn(&RandomSpnConfig::with_vars(6), &mut StdRng::seed_from_u64(5));
    /// let mut engine = Engine::from_spn(CpuModel::new(), &spn)?;
    ///
    /// // Marginal: unobserved variables are summed out.
    /// let mut batch = EvidenceBatch::new(6);
    /// batch.push_marginal();
    /// let marginal = engine.execute_query(&QueryBatch::Marginal(batch.clone()))?;
    /// assert!((marginal.values[0] - 1.0).abs() < 1e-9);
    ///
    /// // MAP: the most probable completion, with the assignment traced back.
    /// let map = engine.execute_query(&QueryBatch::Map(batch))?;
    /// let assignment = &map.assignments.as_ref().unwrap()[0];
    /// assert_eq!(assignment.len(), 6);
    ///
    /// // Conditional: P(target | given) as a ratio of two passes.
    /// let mut cond = ConditionalBatch::new(6);
    /// let mut target = Evidence::marginal(6);
    /// target.observe(0, true);
    /// cond.push(&target, &Evidence::marginal(6))?;
    /// let conditional = engine.execute_query(&QueryBatch::Conditional(cond))?;
    /// assert!(conditional.values[0] > 0.0 && conditional.values[0] <= 1.0);
    /// # Ok(())
    /// # }
    /// ```
    ///
    /// # Errors
    ///
    /// Returns an error when the batch does not match the compiled program,
    /// a joint row leaves variables unobserved, a conditional query
    /// conditions on zero-probability evidence, or the platform fails
    /// structurally.
    pub fn execute_query(&mut self, query: &QueryBatch) -> Result<QueryOutput, BackendError> {
        self.lower_query(
            query,
            |engine, batch| engine.execute_batch(batch),
            |engine, batch| {
                let plan = engine.map.as_ref().expect("map plan ensured");
                engine.backend.execute_batch(
                    &plan.compiled,
                    batch,
                    &mut engine.buffers,
                    &mut engine.scratch,
                )
            },
        )
    }
}

impl<B: Backend + Sync> Engine<B>
where
    B::Compiled: Sync,
{
    /// Executes every query of `batch` sharded across a fixed pool of scoped
    /// worker threads (see [`Backend::execute_batch_parallel`]).
    ///
    /// Results are bit-for-bit identical to [`Engine::execute_batch`]; the
    /// per-worker states live in the engine and are reused across batches.
    ///
    /// ```
    /// use spn_core::{random::{random_spn, RandomSpnConfig}, EvidenceBatch};
    /// use spn_platforms::{CpuModel, Engine, Parallelism};
    /// use rand::{rngs::StdRng, SeedableRng};
    ///
    /// # fn main() -> Result<(), spn_platforms::BackendError> {
    /// let spn = random_spn(&RandomSpnConfig::with_vars(8), &mut StdRng::seed_from_u64(2));
    /// let mut engine = Engine::from_spn(CpuModel::new(), &spn)?;
    /// let batch = EvidenceBatch::marginals(8, 256);
    ///
    /// let serial = engine.execute_batch(&batch)?;
    /// let parallel = engine.execute_batch_parallel(&batch, &Parallelism::workers(4))?;
    /// assert_eq!(serial.values, parallel.values);
    /// assert_eq!(serial.perf, parallel.perf);
    /// # Ok(())
    /// # }
    /// ```
    ///
    /// # Errors
    ///
    /// As for [`Engine::execute_batch`].
    pub fn execute_batch_parallel(
        &mut self,
        batch: &EvidenceBatch,
        parallelism: &Parallelism,
    ) -> Result<BatchResult, BackendError> {
        self.backend
            .execute_batch_parallel(&self.compiled, batch, parallelism, &mut self.workers)
    }

    /// Answers a [`QueryBatch`] with every circuit pass sharded across the
    /// worker pool (see [`Engine::execute_query`] for the per-mode lowering).
    ///
    /// The MAP argmax traceback stays on the calling thread; everything else
    /// — including both passes of a conditional batch — runs through
    /// [`Backend::execute_batch_parallel`] and is bit-for-bit identical to
    /// the serial query path.
    ///
    /// # Errors
    ///
    /// As for [`Engine::execute_query`].
    pub fn execute_query_parallel(
        &mut self,
        query: &QueryBatch,
        parallelism: &Parallelism,
    ) -> Result<QueryOutput, BackendError> {
        self.lower_query(
            query,
            |engine, batch| engine.execute_batch_parallel(batch, parallelism),
            |engine, batch| {
                let plan = engine.map.as_ref().expect("map plan ensured");
                engine.backend.execute_batch_parallel(
                    &plan.compiled,
                    batch,
                    parallelism,
                    &mut engine.workers,
                )
            },
        )
    }
}
