//! The compile-once / execute-many inference engine.
//!
//! [`Engine`] binds a [`Backend`] to one compiled circuit and owns every
//! piece of reusable execution state — the serial [`ExecBuffers`], the
//! per-worker pool of the parallel path, and the lazily compiled max-product
//! artifact of MAP queries — so callers get the two-phase execution model
//! through one handle:
//!
//! * construct once ([`Engine::new`] with an [`EngineOptions`], or
//!   [`Engine::from_ops`] for an already-lowered program; compilation
//!   happens here),
//! * stream [`EvidenceBatch`]es through [`Engine::execute_batch`] (serial)
//!   or [`Engine::execute_batch_parallel`] (sharded across a worker pool)
//!   with zero per-query allocation,
//! * answer richer workloads through [`Engine::execute_query`] /
//!   [`Engine::execute_query_parallel`], which lower
//!   [`QueryBatch`]es (joint / marginal / MAP / conditional) onto those same
//!   batched passes.
//!
//! Single-query [`Engine::execute`] is a thin convenience wrapper over a
//! one-element batch.

use std::sync::Arc;

use spn_core::batch::EvidenceBatch;
use spn_core::flatten::OpList;
use spn_core::incremental::{ConeAnalysis, DeltaOutcome, IncrementalState};
use spn_core::precision::round_to;
use spn_core::query::{conditional_values, MaxProductProgram, QueryBatch};
use spn_core::sample::{SampleBatch, SampleRun, SamplerProgram};
use spn_core::{Evidence, NumericMode, Precision, Spn, SpnError};
use spn_processor::PerfReport;

use crate::backend::{Backend, BackendError, BatchResult, ExecBuffers, Parallelism, WorkerState};
use crate::options::{EngineOptions, VerifyLevel};

/// The MAP half of an engine, cheaply shareable between engines: the
/// max-product program plus the backend's compiled artifact for it.
///
/// Compiled lazily on the first MAP query (or eagerly via
/// [`Engine::prepare_map`]); a model registry can lift it out of one engine
/// with [`Engine::shared_map`] and install it into sibling engines with
/// [`Engine::install_map`], so a fleet of serving workers compiles the
/// max-product variant once per circuit.
pub struct MapArtifact<B: Backend> {
    program: Arc<MaxProductProgram>,
    compiled: Arc<B::Compiled>,
}

impl<B: Backend> Clone for MapArtifact<B> {
    fn clone(&self) -> Self {
        MapArtifact {
            program: Arc::clone(&self.program),
            compiled: Arc::clone(&self.compiled),
        }
    }
}

/// Values, optional MAP assignments and accumulated counters of one query
/// batch.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryOutput {
    /// One value per query, in batch order: a probability for joint /
    /// marginal / conditional queries, the max-product circuit value for MAP
    /// queries, the estimated `P(e)` for expectation queries, and the
    /// per-sample weights (`n_samples` per query) for sample queries — in
    /// the engine's numeric domain, quantized to its emulated precision.
    pub values: Vec<f64>,
    /// The maximising complete assignment per MAP query, or the drawn
    /// assignments (`n_samples` per query, row-major) for sample batches;
    /// `None` otherwise.
    pub assignments: Option<Vec<Vec<bool>>>,
    /// Standard error per query for the approximate (sample / expectation)
    /// modes — always on the linear probability scale, never quantized;
    /// `None` for exact modes.
    pub std_err: Option<Vec<f64>>,
    /// Total samples drawn answering the batch (zero for exact modes).
    pub samples: u64,
    /// Accumulated performance counters.  [`PerfReport::queries`] counts
    /// *circuit passes*, so a conditional batch reports two passes per
    /// logical query.
    pub perf: PerfReport,
}

/// One client's retained evaluation state over an [`Engine`]: the evidence
/// as of the last query plus, on backends with cone support, the previous
/// pass's input and per-op result buffers.
///
/// Created by [`Engine::open_session`], advanced by
/// [`Engine::session_delta`].  Sessions are independent of each other and of
/// the engine's batch paths — a serving layer keeps one per connected
/// client; the per-program [`ConeAnalysis`] is shared, the buffers are not.
pub struct EvalSession {
    /// `Some` on backends that support incremental cone re-execution.
    cones: Option<Arc<ConeAnalysis>>,
    state: IncrementalState,
    evidence: Evidence,
    value: f64,
}

impl EvalSession {
    /// The circuit value under the session's current evidence.
    pub fn value(&self) -> f64 {
        self.value
    }

    /// The session's current evidence (the seed evidence with every
    /// successful delta applied).
    pub fn evidence(&self) -> &Evidence {
        &self.evidence
    }

    /// Whether deltas run incrementally (`false` means every delta is a
    /// full pass on a backend without cone support).
    pub fn is_incremental(&self) -> bool {
        self.cones.is_some()
    }

    /// The reachability cones backing this session, when incremental.
    pub fn cone_analysis(&self) -> Option<&ConeAnalysis> {
        self.cones.as_deref()
    }

    /// Applies validated flips to the tracked evidence.
    fn apply_to_evidence(&mut self, flips: &[(usize, Option<bool>)]) {
        for &(var, observation) in flips {
            match observation {
                Some(value) => self.evidence.observe(var, value),
                None => self.evidence.forget(var),
            }
        }
    }
}

/// A backend bound to one compiled circuit, ready to serve queries.
///
/// ```
/// use spn_core::{random::{random_spn, RandomSpnConfig}, EvidenceBatch};
/// use spn_platforms::{CpuModel, Engine, EngineOptions};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// # fn main() -> Result<(), spn_platforms::BackendError> {
/// let spn = random_spn(&RandomSpnConfig::with_vars(8), &mut StdRng::seed_from_u64(1));
/// let mut engine = Engine::new(CpuModel::new(), &spn, EngineOptions::default())?;
///
/// let batch = EvidenceBatch::marginals(8, 64);
/// let result = engine.execute_batch(&batch)?;
/// assert_eq!(result.values.len(), 64);
/// assert!(result.values.iter().all(|v| (v - 1.0).abs() < 1e-9));
/// assert_eq!(result.perf.queries, 64);
/// # Ok(())
/// # }
/// ```
pub struct Engine<B: Backend> {
    backend: B,
    /// Reference-counted so model registries and sibling worker engines can
    /// share one compiled artifact ([`Engine::shared_compiled`]).
    compiled: Arc<B::Compiled>,
    /// The sum-product program the engine was compiled from; kept so the
    /// max-product (MAP) variant can be derived lazily.
    ops: OpList,
    buffers: ExecBuffers,
    scratch: B::Scratch,
    /// Per-worker states of the parallel path (grown on first use, then
    /// reused across batches).
    workers: Vec<WorkerState<B>>,
    /// Max-product artifact for MAP queries; compiled on first use (or
    /// installed pre-compiled via [`Engine::install_map`]).
    map: Option<MapArtifact<B>>,
    /// Compiled sampler for the approximate (sample / expectation) query
    /// modes.  Built by [`Engine::new`] (it needs the graph, which
    /// [`Engine::from_ops`] does not have) or installed via
    /// [`Engine::install_sampler`]; shared across sibling engines like the
    /// compiled artifact.
    sampler: Option<Arc<SamplerProgram>>,
    /// Scratch one-query batch backing [`Engine::execute`].
    single: EvidenceBatch,
}

impl<B: Backend> Engine<B> {
    /// Flattens `spn`, lowers it per `options` (numeric domain and emulated
    /// PE precision), applies the backend-tuning knobs via
    /// [`Backend::configure`] and compiles — the single canonical
    /// construction path (and the expensive, once-per-circuit phase).
    ///
    /// With [`EngineOptions::default`] this is the plain linear-domain,
    /// native-`f64` engine.  See [`EngineOptions`] for what each field
    /// selects; an already-lowered [`OpList`] compiles through
    /// [`Engine::from_ops`] instead.
    ///
    /// Per [`EngineOptions::verify`], the static analyses of
    /// [`spn_core::analysis`] run over `spn` and the lowered program first:
    /// [`VerifyLevel::Errors`] (the debug-build default) rejects structural
    /// violations, [`VerifyLevel::Strict`] also rejects numeric-range
    /// warnings such as guaranteed linear-domain underflow at the stamped
    /// precision.
    ///
    /// # Errors
    ///
    /// Returns [`SpnError::Verification`] (boxed) when verification is
    /// enabled and finds a fatal diagnostic, or an error when an option
    /// value is invalid for the backend or the backend cannot compile the
    /// program.
    pub fn new(mut backend: B, spn: &Spn, options: EngineOptions) -> Result<Self, BackendError> {
        backend.configure(&options)?;
        let ops = options.lower(spn);
        if options.verify != VerifyLevel::Off {
            let mut diagnostics = spn_core::analysis::lint_spn(spn);
            diagnostics.extend(spn_core::analysis::lint_ranges(&ops).diagnostics);
            let fatal = match options.verify {
                VerifyLevel::Off => None,
                VerifyLevel::Errors => Some(spn_core::Severity::Error),
                VerifyLevel::Strict => Some(spn_core::Severity::Warn),
            };
            if let (Some(threshold), Some(worst)) =
                (fatal, spn_core::analysis::max_severity(&diagnostics))
            {
                if worst >= threshold {
                    return Err(Box::new(SpnError::Verification { diagnostics }));
                }
            }
        }
        let mut engine = Engine::from_ops(backend, &ops)?;
        engine.sampler = Some(Arc::new(SamplerProgram::new(spn)));
        Ok(engine)
    }

    /// Compiles an already-lowered `ops` program for `backend`.
    ///
    /// # Errors
    ///
    /// Returns an error when the backend cannot compile the program.
    pub fn from_ops(backend: B, ops: &OpList) -> Result<Self, BackendError> {
        let compiled = Arc::new(backend.compile(ops)?);
        Ok(Engine::from_artifact(backend, ops, compiled))
    }

    /// Wraps an already compiled artifact without recompiling.
    ///
    /// This is the cheap construction path of a serving fleet: a model
    /// registry compiles (or caches) the artifact once, and every worker
    /// engine is built from an [`Arc`] clone of it — only the per-engine
    /// execution state (buffers, scratch, worker pool) is fresh.  `compiled`
    /// must be `backend`'s compilation of `ops`.
    pub fn from_artifact(backend: B, ops: &OpList, compiled: Arc<B::Compiled>) -> Self {
        Engine {
            backend,
            compiled,
            ops: ops.clone(),
            buffers: ExecBuffers::new(),
            scratch: B::Scratch::default(),
            workers: Vec::new(),
            map: None,
            sampler: None,
            single: EvidenceBatch::new(ops.num_vars()),
        }
    }

    /// The platform name of the underlying backend.
    pub fn name(&self) -> String {
        self.backend.name()
    }

    /// The underlying backend.
    pub fn backend(&self) -> &B {
        &self.backend
    }

    /// The compiled artifact this engine serves queries against.
    pub fn compiled(&self) -> &B::Compiled {
        &self.compiled
    }

    /// A shared handle to the compiled artifact (for caching it in a model
    /// registry or constructing sibling engines via
    /// [`Engine::from_artifact`]).
    pub fn shared_compiled(&self) -> Arc<B::Compiled> {
        Arc::clone(&self.compiled)
    }

    /// The max-product artifact, if it has been compiled or installed
    /// (see [`Engine::prepare_map`] / [`Engine::install_map`]).
    pub fn shared_map(&self) -> Option<MapArtifact<B>> {
        self.map.clone()
    }

    /// Installs a pre-compiled max-product artifact (e.g. one lifted from a
    /// sibling engine via [`Engine::shared_map`]), replacing any existing
    /// one.  The artifact must come from an engine over the same program and
    /// backend configuration.
    pub fn install_map(&mut self, map: MapArtifact<B>) {
        self.map = Some(map);
    }

    /// The compiled sampler, if the engine has one ([`Engine::new`] builds
    /// it from the graph; [`Engine::from_ops`] cannot).
    pub fn shared_sampler(&self) -> Option<Arc<SamplerProgram>> {
        self.sampler.clone()
    }

    /// Installs a compiled sampler (e.g. one lifted from a sibling engine
    /// via [`Engine::shared_sampler`], or built directly with
    /// [`SamplerProgram::new`]), replacing any existing one.  The sampler
    /// must come from the same graph the engine's program was lowered from.
    pub fn install_sampler(&mut self, sampler: Arc<SamplerProgram>) {
        self.sampler = Some(sampler);
    }

    /// Ensures the max-product artifact exists, compiling it if needed — the
    /// eager form of what the first MAP query does lazily.
    ///
    /// # Errors
    ///
    /// Returns an error when the backend cannot compile the max-product
    /// program.
    pub fn prepare_map(&mut self) -> Result<(), BackendError> {
        self.map_plan().map(|_| ())
    }

    /// The flattened sum-product program the engine was compiled from.
    pub fn ops(&self) -> &OpList {
        &self.ops
    }

    /// The numeric domain this engine computes in (inherited from the
    /// program it was compiled from).
    pub fn mode(&self) -> NumericMode {
        self.ops.mode()
    }

    /// The emulated PE arithmetic format this engine computes in (inherited
    /// from the program it was compiled from).
    pub fn precision(&self) -> Precision {
        self.ops.precision()
    }

    /// Executes every query of `batch` against the compiled circuit.
    ///
    /// # Errors
    ///
    /// Returns an error when the batch does not match the compiled program
    /// or the platform fails structurally.
    pub fn execute_batch(&mut self, batch: &EvidenceBatch) -> Result<BatchResult, BackendError> {
        self.backend
            .execute_batch(&self.compiled, batch, &mut self.buffers, &mut self.scratch)
    }

    /// Executes one query: a convenience wrapper over a one-element batch.
    ///
    /// # Errors
    ///
    /// Returns an error when the evidence does not match the compiled
    /// program or the platform fails structurally.
    pub fn execute(&mut self, evidence: &Evidence) -> Result<(f64, PerfReport), BackendError> {
        self.single.clear();
        self.single.push(evidence)?;
        let mut result = self.backend.execute_batch(
            &self.compiled,
            &self.single,
            &mut self.buffers,
            &mut self.scratch,
        )?;
        let value = result
            .values
            .pop()
            .ok_or("backend returned no value for a one-query batch")?;
        Ok((value, result.perf))
    }

    /// Opens an evaluation session seeded with one full pass under
    /// `evidence`, ready for [`Engine::session_delta`] queries.
    ///
    /// On backends that expose reachability cones
    /// ([`Backend::cone_analysis`] — the CPU model), the session retains the
    /// pass's input and per-op result buffers, and subsequent deltas
    /// re-execute only the flipped variables' cones.  On every other backend
    /// the session still tracks the evidence, but each delta runs a full
    /// single-query pass.
    ///
    /// ```
    /// use spn_core::{random::{random_spn, RandomSpnConfig}, Evidence};
    /// use spn_platforms::{CpuModel, Engine, EngineOptions};
    /// use rand::{rngs::StdRng, SeedableRng};
    ///
    /// # fn main() -> Result<(), spn_platforms::BackendError> {
    /// let spn = random_spn(&RandomSpnConfig::with_vars(8), &mut StdRng::seed_from_u64(3));
    /// let mut engine = Engine::new(CpuModel::new(), &spn, EngineOptions::default())?;
    ///
    /// let mut session = engine.open_session(&Evidence::marginal(8))?;
    /// let outcome = engine.session_delta(&mut session, &[(0, Some(true))])?;
    ///
    /// // Bit-for-bit the value of a full re-evaluation under the updated
    /// // evidence.
    /// let mut evidence = Evidence::marginal(8);
    /// evidence.observe(0, true);
    /// let (full, _) = engine.execute(&evidence)?;
    /// assert_eq!(outcome.value.to_bits(), full.to_bits());
    /// # Ok(())
    /// # }
    /// ```
    ///
    /// # Errors
    ///
    /// Returns an error when the evidence does not match the compiled
    /// program or the seeding pass fails.
    pub fn open_session(&mut self, evidence: &Evidence) -> Result<EvalSession, BackendError> {
        let cones = self.backend.cone_analysis(&self.compiled);
        let mut state = IncrementalState::new();
        let value = match &cones {
            Some(cones) => cones.prime(&self.ops, evidence, &mut state)?,
            None => self.execute(evidence)?.0,
        };
        Ok(EvalSession {
            cones,
            state,
            evidence: evidence.clone(),
            value,
        })
    }

    /// Applies evidence flips to `session` and returns the new circuit
    /// value, re-executing only the flipped variables' reachable cones when
    /// the backend supports it (with automatic fallback to a full pass when
    /// the dirty cone exceeds the
    /// [`full-pass fraction`](ConeAnalysis::full_pass_fraction) of the
    /// program, or always on backends without cone support).
    ///
    /// Each flip is `(variable index, new observation)`; `None`
    /// marginalises the variable.  The value is **bit-for-bit** the value a
    /// full re-evaluation under the session's updated evidence would
    /// produce, in every numeric mode and precision — see
    /// [`spn_core::incremental`] for why.  [`DeltaOutcome`] reports which
    /// path ran and how many operations it re-executed.
    ///
    /// # Errors
    ///
    /// Returns an error on out-of-range variables (the session is untouched)
    /// or when a fallback full pass fails.
    pub fn session_delta(
        &mut self,
        session: &mut EvalSession,
        flips: &[(usize, Option<bool>)],
    ) -> Result<DeltaOutcome, BackendError> {
        let num_vars = self.ops.num_vars();
        for &(var, _) in flips {
            if var >= num_vars {
                return Err(Box::new(SpnError::UnknownVariable {
                    var: var as u32,
                    num_vars,
                }));
            }
        }
        let outcome = match &session.cones {
            Some(cones) => {
                let outcome = cones.apply_flips(&self.ops, flips, &mut session.state)?;
                session.apply_to_evidence(flips);
                outcome
            }
            None => {
                session.apply_to_evidence(flips);
                let (value, _) = self.execute(&session.evidence)?;
                DeltaOutcome {
                    value,
                    recomputed_ops: self.ops.num_ops(),
                    full_pass: true,
                }
            }
        };
        session.value = outcome.value;
        Ok(outcome)
    }

    /// Ensures the max-product artifact exists (compiling it on first use)
    /// and returns it.
    fn map_plan(&mut self) -> Result<&MapArtifact<B>, BackendError> {
        if self.map.is_none() {
            let program = MaxProductProgram::from_op_list(&self.ops);
            let compiled = Arc::new(self.backend.compile(program.ops())?);
            self.map = Some(MapArtifact {
                program: Arc::new(program),
                compiled,
            });
        }
        Ok(self.map.as_ref().expect("map plan just ensured"))
    }

    /// Recovers the maximising assignment of every query of a MAP batch by
    /// re-running the max-product program per query on the host and
    /// backtracking the argmax branches.
    fn trace_map_assignments(
        plan: &MapArtifact<B>,
        batch: &EvidenceBatch,
    ) -> Result<Vec<Vec<bool>>, BackendError> {
        plan.program.recipe().check(batch)?;
        let mut inputs = Vec::new();
        let mut results = Vec::new();
        let mut assignments = Vec::with_capacity(batch.len());
        for q in 0..batch.len() {
            plan.program.run_query(batch, q, &mut inputs, &mut results);
            assignments.push(
                plan.program
                    .trace_assignment(&inputs, &results, batch.query(q)),
            );
        }
        Ok(assignments)
    }

    /// The per-mode lowering shared by [`Engine::execute_query`] and
    /// [`Engine::execute_query_parallel`]: `exec` runs a batch against the
    /// engine's main artifact, `exec_map` against the (already ensured)
    /// max-product artifact; the approximate modes run the installed
    /// sampler, sharded per `parallelism`.  A single lowering guarantees
    /// the serial and parallel query paths can never diverge in policy.
    fn lower_query(
        &mut self,
        query: &QueryBatch,
        parallelism: Option<&Parallelism>,
        exec: impl Fn(&mut Self, &EvidenceBatch) -> Result<BatchResult, BackendError>,
        exec_map: impl Fn(&mut Self, &EvidenceBatch) -> Result<BatchResult, BackendError>,
    ) -> Result<QueryOutput, BackendError> {
        query.validate()?;
        match query {
            QueryBatch::Joint(batch) | QueryBatch::Marginal(batch) => {
                let result = exec(self, batch)?;
                Ok(QueryOutput {
                    values: result.values,
                    assignments: None,
                    std_err: None,
                    samples: 0,
                    perf: result.perf,
                })
            }
            QueryBatch::Map(batch) => {
                self.map_plan()?;
                let result = exec_map(self, batch)?;
                let plan = self.map.as_ref().expect("map plan ensured");
                let assignments = Self::trace_map_assignments(plan, batch)?;
                Ok(QueryOutput {
                    values: result.values,
                    assignments: Some(assignments),
                    std_err: None,
                    samples: 0,
                    perf: result.perf,
                })
            }
            QueryBatch::Conditional(cond) => {
                let numerator = exec(self, cond.numerator())?;
                let denominator = exec(self, cond.denominator())?;
                let values =
                    conditional_values(self.ops.mode(), numerator.values, &denominator.values)?;
                let mut perf = numerator.perf;
                perf.merge(&denominator.perf);
                Ok(QueryOutput {
                    values,
                    assignments: None,
                    std_err: None,
                    samples: 0,
                    perf,
                })
            }
            QueryBatch::Sample(batch) => self.run_sampler(batch, true, parallelism),
            QueryBatch::Expectation(batch) => self.run_sampler(batch, false, parallelism),
        }
    }

    /// Runs the approximate modes over the installed sampler: rows are
    /// sharded across scoped threads per `parallelism` (per-row results are
    /// a pure function of `(row, spec, stream)`, so any sharding
    /// concatenates to the serial result bit for bit), then reported in the
    /// engine's numeric domain with values quantized to its emulated
    /// precision.  Standard errors stay on the linear scale, unquantized —
    /// they describe the estimator, not the datapath.
    fn run_sampler(
        &self,
        batch: &SampleBatch,
        sample_mode: bool,
        parallelism: Option<&Parallelism>,
    ) -> Result<QueryOutput, BackendError> {
        let sampler = self.sampler.as_deref().ok_or_else(|| {
            Box::new(SpnError::invalid(
                "engine has no sampler: approximate queries need an engine built from the \
                 graph (Engine::new) or an installed sampler (Engine::install_sampler)"
                    .to_string(),
            ))
        })?;
        let run_range = |start: usize, count: usize| -> Result<SampleRun, SpnError> {
            if sample_mode {
                sampler.run_sample_range(batch, start, count)
            } else {
                sampler.run_expectation_range(batch, start, count)
            }
        };
        let shards = parallelism.map_or(1, |p| p.shards_for(batch.len()));
        let run = if shards <= 1 {
            run_range(0, batch.len())?
        } else {
            let base = batch.len() / shards;
            let extra = batch.len() % shards;
            let mut ranges = Vec::with_capacity(shards);
            let mut start = 0;
            for s in 0..shards {
                let count = base + usize::from(s < extra);
                ranges.push((start, count));
                start += count;
            }
            let parts: Vec<Result<SampleRun, SpnError>> = std::thread::scope(|scope| {
                let handles: Vec<_> = ranges
                    .iter()
                    .map(|&(start, count)| scope.spawn(move || run_range(start, count)))
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("sampler worker panicked"))
                    .collect()
            });
            let mut merged = SampleRun::default();
            for part in parts {
                let part = part?;
                merged.values.extend(part.values);
                merged.std_err.extend(part.std_err);
                if let Some(assignments) = part.assignments {
                    merged
                        .assignments
                        .get_or_insert_with(Vec::new)
                        .extend(assignments);
                }
                merged.samples_drawn += part.samples_drawn;
            }
            merged
        };
        let mode = self.ops.mode();
        let precision = self.ops.precision();
        let values = run
            .values
            .into_iter()
            .map(|v| {
                let domain = match mode {
                    NumericMode::Linear => v,
                    NumericMode::Log => v.ln(),
                };
                round_to(precision, domain)
            })
            .collect();
        Ok(QueryOutput {
            values,
            assignments: run.assignments,
            std_err: Some(run.std_err),
            samples: run.samples_drawn,
            perf: PerfReport {
                platform: format!("{} sampler", self.backend.name()),
                queries: batch.len() as u64,
                ..PerfReport::default()
            },
        })
    }

    /// Answers a [`QueryBatch`] against the compiled circuit.
    ///
    /// Every mode lowers onto the serial batched execution path:
    ///
    /// * **Joint** / **Marginal** — one [`Engine::execute_batch`] pass (joint
    ///   rows are validated to be fully observed first),
    /// * **Conditional** — two passes (numerator and denominator batches)
    ///   plus one division per query,
    /// * **Map** — one pass over the lazily compiled max-product artifact for
    ///   the values, plus a host-side argmax traceback recovering the
    ///   maximising assignments (the traceback is not part of the modelled
    ///   platform cost).
    ///
    /// ```
    /// use spn_core::{ConditionalBatch, Evidence, EvidenceBatch, QueryBatch};
    /// use spn_core::random::{random_spn, RandomSpnConfig};
    /// use spn_platforms::{CpuModel, Engine, EngineOptions};
    /// use rand::{rngs::StdRng, SeedableRng};
    ///
    /// # fn main() -> Result<(), spn_platforms::BackendError> {
    /// let spn = random_spn(&RandomSpnConfig::with_vars(6), &mut StdRng::seed_from_u64(5));
    /// let mut engine = Engine::new(CpuModel::new(), &spn, EngineOptions::default())?;
    ///
    /// // Marginal: unobserved variables are summed out.
    /// let mut batch = EvidenceBatch::new(6);
    /// batch.push_marginal();
    /// let marginal = engine.execute_query(&QueryBatch::Marginal(batch.clone()))?;
    /// assert!((marginal.values[0] - 1.0).abs() < 1e-9);
    ///
    /// // MAP: the most probable completion, with the assignment traced back.
    /// let map = engine.execute_query(&QueryBatch::Map(batch))?;
    /// let assignment = &map.assignments.as_ref().unwrap()[0];
    /// assert_eq!(assignment.len(), 6);
    ///
    /// // Conditional: P(target | given) as a ratio of two passes.
    /// let mut cond = ConditionalBatch::new(6);
    /// let mut target = Evidence::marginal(6);
    /// target.observe(0, true);
    /// cond.push(&target, &Evidence::marginal(6))?;
    /// let conditional = engine.execute_query(&QueryBatch::Conditional(cond))?;
    /// assert!(conditional.values[0] > 0.0 && conditional.values[0] <= 1.0);
    /// # Ok(())
    /// # }
    /// ```
    ///
    /// # Errors
    ///
    /// Returns an error when the batch does not match the compiled program,
    /// a joint row leaves variables unobserved, a conditional query
    /// conditions on zero-probability evidence, or the platform fails
    /// structurally.
    pub fn execute_query(&mut self, query: &QueryBatch) -> Result<QueryOutput, BackendError> {
        self.lower_query(
            query,
            None,
            |engine, batch| engine.execute_batch(batch),
            |engine, batch| {
                let plan = engine.map.as_ref().expect("map plan ensured");
                engine.backend.execute_batch(
                    &plan.compiled,
                    batch,
                    &mut engine.buffers,
                    &mut engine.scratch,
                )
            },
        )
    }
}

impl<B: Backend + Sync> Engine<B>
where
    B::Compiled: Sync,
{
    /// Executes every query of `batch` sharded across a fixed pool of scoped
    /// worker threads (see [`Backend::execute_batch_parallel`]).
    ///
    /// Results are bit-for-bit identical to [`Engine::execute_batch`]; the
    /// per-worker states live in the engine and are reused across batches.
    ///
    /// ```
    /// use spn_core::{random::{random_spn, RandomSpnConfig}, EvidenceBatch};
    /// use spn_platforms::{CpuModel, Engine, EngineOptions, Parallelism};
    /// use rand::{rngs::StdRng, SeedableRng};
    ///
    /// # fn main() -> Result<(), spn_platforms::BackendError> {
    /// let spn = random_spn(&RandomSpnConfig::with_vars(8), &mut StdRng::seed_from_u64(2));
    /// let mut engine = Engine::new(CpuModel::new(), &spn, EngineOptions::default())?;
    /// let batch = EvidenceBatch::marginals(8, 256);
    ///
    /// let serial = engine.execute_batch(&batch)?;
    /// let parallel = engine.execute_batch_parallel(&batch, &Parallelism::workers(4))?;
    /// assert_eq!(serial.values, parallel.values);
    /// assert_eq!(serial.perf, parallel.perf);
    /// # Ok(())
    /// # }
    /// ```
    ///
    /// # Errors
    ///
    /// As for [`Engine::execute_batch`].
    pub fn execute_batch_parallel(
        &mut self,
        batch: &EvidenceBatch,
        parallelism: &Parallelism,
    ) -> Result<BatchResult, BackendError> {
        self.backend
            .execute_batch_parallel(&self.compiled, batch, parallelism, &mut self.workers)
    }

    /// Answers a [`QueryBatch`] with every circuit pass sharded across the
    /// worker pool (see [`Engine::execute_query`] for the per-mode lowering).
    ///
    /// The MAP argmax traceback stays on the calling thread; everything else
    /// — including both passes of a conditional batch — runs through
    /// [`Backend::execute_batch_parallel`] and is bit-for-bit identical to
    /// the serial query path.
    ///
    /// # Errors
    ///
    /// As for [`Engine::execute_query`].
    pub fn execute_query_parallel(
        &mut self,
        query: &QueryBatch,
        parallelism: &Parallelism,
    ) -> Result<QueryOutput, BackendError> {
        self.lower_query(
            query,
            Some(parallelism),
            |engine, batch| engine.execute_batch_parallel(batch, parallelism),
            |engine, batch| {
                let plan = engine.map.as_ref().expect("map plan ensured");
                engine.backend.execute_batch_parallel(
                    &plan.compiled,
                    batch,
                    parallelism,
                    &mut engine.workers,
                )
            },
        )
    }
}
