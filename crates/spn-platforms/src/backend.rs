//! The two-phase execution interface every platform implements.
//!
//! The paper's deployment model separates *compilation* of an SPN into a
//! platform program from *repeated inference* over streams of evidence.  The
//! [`Backend`] trait encodes exactly that split:
//!
//! 1. [`Backend::compile`] runs once per circuit and produces an arbitrary
//!    platform-specific artifact (levelisations, bank assignments, VLIW
//!    programs, pre-modelled cycle counts, input recipes — whatever the
//!    platform wants to amortise),
//! 2. [`Backend::execute_batch`] runs per evidence batch against that
//!    artifact, using caller-owned [`ExecBuffers`] so the hot path performs
//!    no per-query allocation.
//!
//! The [`crate::Engine`] wrapper owns a backend, its compiled artifact and
//! the buffers, which is the API the benchmark harness and examples use.

use spn_core::batch::{EvidenceBatch, InputRecipe};
use spn_core::flatten::OpList;
use spn_processor::PerfReport;

/// Errors surfaced by backends (compile- or execute-time).
pub type BackendError = Box<dyn std::error::Error + Send + Sync>;

/// Reusable scratch memory for the execute-many hot path.
///
/// Owned by the caller (typically an [`crate::Engine`]) and handed to every
/// [`Backend::execute_batch`] call; backends resize the vectors as needed and
/// the allocations persist across batches.  Backend-specific reusable state
/// (e.g. the processor simulator's register file and data memory) lives in
/// the statically-typed [`Backend::Scratch`] instead.
#[derive(Debug, Clone, Default)]
pub struct ExecBuffers {
    /// Input-vector arena: one input vector per query for platforms that
    /// materialise the whole batch (query-major), or a single vector reused
    /// across queries.
    pub inputs: Vec<f64>,
    /// Intermediate-result arena (one slot per flattened operation).
    pub scratch: Vec<f64>,
}

impl ExecBuffers {
    /// Creates empty buffers (they grow on first use and are then reused).
    pub fn new() -> Self {
        ExecBuffers::default()
    }
}

/// Shared execute-many skeleton for backends whose per-query work is a pure
/// kernel over (input vector, scratch buffer): validates the batch, sizes the
/// buffers once, fills inputs per query through the recipe, runs `kernel`,
/// and accumulates the evidence-independent per-query cost model.
pub(crate) fn execute_recipe_batch(
    recipe: &InputRecipe,
    num_ops: usize,
    perf_per_query: &PerfReport,
    fallback_name: &str,
    batch: &EvidenceBatch,
    buffers: &mut ExecBuffers,
    mut kernel: impl FnMut(&[f64], &mut [f64]) -> f64,
) -> Result<BatchResult, BackendError> {
    recipe.check(batch)?;
    buffers.inputs.clear();
    buffers.inputs.resize(recipe.num_inputs(), 0.0);
    buffers.scratch.clear();
    buffers.scratch.resize(num_ops, 0.0);

    let mut values = Vec::with_capacity(batch.len());
    let mut perf = PerfReport::default();
    for q in 0..batch.len() {
        recipe.fill_query(batch, q, &mut buffers.inputs);
        values.push(kernel(&buffers.inputs, &mut buffers.scratch));
        perf.merge(perf_per_query);
    }
    if perf.platform.is_empty() {
        fallback_name.clone_into(&mut perf.platform);
    }
    Ok(BatchResult { values, perf })
}

/// Root values and accumulated counters of one batch execution.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchResult {
    /// One SPN root value per query, in batch order.
    pub values: Vec<f64>,
    /// Accumulated performance counters ([`PerfReport::queries`] passes).
    pub perf: PerfReport,
}

/// A two-phase execution platform: compile once, execute many.
///
/// Implementations both *execute* the program (so results can be checked
/// against the reference evaluator) and *model* its cost in cycles; the
/// modelled counters land in [`BatchResult::perf`].
pub trait Backend {
    /// The platform-specific compiled artifact (cacheable, reusable across
    /// any number of batches).
    type Compiled;

    /// Platform-specific reusable execution state (e.g. the simulator's
    /// register file and data memory); `()` for stateless backends.  Created
    /// via `Default` by the caller and threaded through every
    /// [`Backend::execute_batch`] call so its allocations survive across
    /// batches.
    type Scratch: Default + Send;

    /// Short name used in tables and figures (e.g. `"CPU"`).
    fn name(&self) -> String;

    /// Compiles `ops` into this platform's executable artifact.
    ///
    /// This is the expensive, once-per-circuit phase; everything derivable
    /// from the program alone (schedules, bank assignments, modelled cycle
    /// counts) belongs here, not in the per-batch path.
    ///
    /// # Errors
    ///
    /// Returns an error when the program cannot be compiled for this
    /// platform.
    fn compile(&self, ops: &OpList) -> Result<Self::Compiled, BackendError>;

    /// Executes every query of `batch` against `compiled`, reusing
    /// `buffers` and the platform-specific `scratch` for all storage.
    ///
    /// # Errors
    ///
    /// Returns an error when the batch does not match the compiled program
    /// or the platform fails structurally.
    fn execute_batch(
        &self,
        compiled: &Self::Compiled,
        batch: &EvidenceBatch,
        buffers: &mut ExecBuffers,
        scratch: &mut Self::Scratch,
    ) -> Result<BatchResult, BackendError>;
}
