//! The two-phase execution interface every platform implements.
//!
//! The paper's deployment model separates *compilation* of an SPN into a
//! platform program from *repeated inference* over streams of evidence.  The
//! [`Backend`] trait encodes exactly that split:
//!
//! 1. [`Backend::compile`] runs once per circuit and produces an arbitrary
//!    platform-specific artifact (levelisations, bank assignments, VLIW
//!    programs, pre-modelled cycle counts, input recipes — whatever the
//!    platform wants to amortise),
//! 2. [`Backend::execute_batch`] runs per evidence batch against that
//!    artifact, using caller-owned [`ExecBuffers`] so the hot path performs
//!    no per-query allocation.
//!
//! On top of the serial per-batch path, [`Backend::execute_batch_parallel`]
//! shards one batch across a fixed pool of scoped worker threads — one
//! [`WorkerState`] (buffers + backend scratch) per worker, contiguous
//! shards, results stitched back in batch order — controlled by a
//! [`Parallelism`] configuration.  Sharding never changes results: every
//! query runs the identical kernel, so parallel output is bit-for-bit equal
//! to serial output.
//!
//! The [`crate::Engine`] wrapper owns a backend, its compiled artifact and
//! the buffers, which is the API the benchmark harness and examples use.

use std::sync::Arc;

use spn_core::batch::{EvidenceBatch, InputRecipe};
use spn_core::flatten::OpList;
use spn_core::incremental::ConeAnalysis;
use spn_processor::PerfReport;

use crate::options::EngineOptions;

/// Errors surfaced by backends (compile- or execute-time).
pub type BackendError = Box<dyn std::error::Error + Send + Sync>;

/// Worker-pool configuration of the parallel sharded execution path.
///
/// A batch is split into at most [`Parallelism::workers`] contiguous shards,
/// each executed by one scoped worker thread with its own [`WorkerState`];
/// [`Parallelism::min_shard`] stops tiny batches from paying thread overhead
/// for a handful of queries (they fall back to the serial path).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Parallelism {
    /// Maximum worker threads (shards) per batch; `1` means serial.
    pub workers: usize,
    /// Minimum queries per shard; batches shorter than `2 × min_shard` run
    /// serially.
    pub min_shard: usize,
}

impl Parallelism {
    /// Queries per shard below which splitting further is not worth a
    /// thread: at ~100 ns/query even the fastest backend amortises thread
    /// spawn only beyond a few dozen queries.
    pub const DEFAULT_MIN_SHARD: usize = 32;

    /// Serial execution (one worker, no threads spawned).
    pub fn serial() -> Self {
        Parallelism {
            workers: 1,
            min_shard: Self::DEFAULT_MIN_SHARD,
        }
    }

    /// A fixed pool of `workers` threads (clamped to at least one).
    pub fn workers(workers: usize) -> Self {
        Parallelism {
            workers: workers.max(1),
            min_shard: Self::DEFAULT_MIN_SHARD,
        }
    }

    /// One worker per hardware thread of the host
    /// ([`std::thread::available_parallelism`]; `1` when unknown).
    pub fn available() -> Self {
        Parallelism::workers(
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
        )
    }

    /// Number of shards a `queries`-long batch is split into: capped by the
    /// worker count and by the minimum shard size, never zero.
    pub fn shards_for(&self, queries: usize) -> usize {
        let by_size = queries / self.min_shard.max(1);
        self.workers.min(by_size).max(1)
    }
}

impl Default for Parallelism {
    /// Defaults to [`Parallelism::available`].
    fn default() -> Self {
        Parallelism::available()
    }
}

/// Per-worker reusable execution state of the parallel path: the generic
/// [`ExecBuffers`] plus the backend's statically-typed scratch.
///
/// One lives per worker slot and persists across batches (owned by the
/// [`crate::Engine`], or caller-managed for direct
/// [`Backend::execute_batch_parallel`] use), so repeated parallel batches
/// allocate nothing per query — the same amortisation story as the serial
/// path, replicated per worker.
pub struct WorkerState<B: Backend + ?Sized> {
    /// The worker's input/scratch arenas.
    pub buffers: ExecBuffers,
    /// The worker's backend-specific state (e.g. a simulator instance).
    pub scratch: B::Scratch,
}

impl<B: Backend + ?Sized> Default for WorkerState<B> {
    fn default() -> Self {
        WorkerState {
            buffers: ExecBuffers::new(),
            scratch: B::Scratch::default(),
        }
    }
}

/// Reusable scratch memory for the execute-many hot path.
///
/// Owned by the caller (typically an [`crate::Engine`]) and handed to every
/// [`Backend::execute_batch`] call; backends resize the vectors as needed and
/// the allocations persist across batches.  Backend-specific reusable state
/// (e.g. the processor simulator's register file and data memory) lives in
/// the statically-typed [`Backend::Scratch`] instead.
#[derive(Debug, Clone, Default)]
pub struct ExecBuffers {
    /// Input-vector arena: one input vector per query for platforms that
    /// materialise the whole batch (query-major), or a single vector reused
    /// across queries.
    pub inputs: Vec<f64>,
    /// Intermediate-result arena (one slot per flattened operation).
    pub scratch: Vec<f64>,
}

impl ExecBuffers {
    /// Creates empty buffers (they grow on first use and are then reused).
    pub fn new() -> Self {
        ExecBuffers::default()
    }
}

/// Shared execute-many skeleton for backends whose per-query work is a pure
/// kernel over (input vector, scratch buffer): validates the batch, sizes the
/// buffers once, fills inputs per query through the recipe, runs `kernel`,
/// and accumulates the evidence-independent per-query cost model.
pub(crate) fn execute_recipe_batch(
    recipe: &InputRecipe,
    num_ops: usize,
    perf_per_query: &PerfReport,
    fallback_name: &str,
    batch: &EvidenceBatch,
    buffers: &mut ExecBuffers,
    mut kernel: impl FnMut(&[f64], &mut [f64]) -> f64,
) -> Result<BatchResult, BackendError> {
    recipe.check(batch)?;
    buffers.inputs.clear();
    buffers.inputs.resize(recipe.num_inputs(), 0.0);
    buffers.scratch.clear();
    buffers.scratch.resize(num_ops, 0.0);

    let mut values = Vec::with_capacity(batch.len());
    let mut perf = PerfReport::default();
    for q in 0..batch.len() {
        recipe.fill_query(batch, q, &mut buffers.inputs);
        values.push(kernel(&buffers.inputs, &mut buffers.scratch));
        perf.merge(perf_per_query);
    }
    if perf.platform.is_empty() {
        fallback_name.clone_into(&mut perf.platform);
    }
    Ok(BatchResult { values, perf })
}

/// Root values and accumulated counters of one batch execution.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchResult {
    /// One SPN root value per query, in batch order.
    pub values: Vec<f64>,
    /// Accumulated performance counters ([`PerfReport::queries`] passes).
    pub perf: PerfReport,
}

/// A two-phase execution platform: compile once, execute many.
///
/// Implementations both *execute* the program (so results can be checked
/// against the reference evaluator) and *model* its cost in cycles; the
/// modelled counters land in [`BatchResult::perf`].
pub trait Backend {
    /// The platform-specific compiled artifact (cacheable, reusable across
    /// any number of batches).
    type Compiled;

    /// Platform-specific reusable execution state (e.g. the simulator's
    /// register file and data memory); `()` for stateless backends.  Created
    /// via `Default` by the caller and threaded through every
    /// [`Backend::execute_batch`] call so its allocations survive across
    /// batches.
    type Scratch: Default + Send;

    /// Short name used in tables and figures (e.g. `"CPU"`).
    fn name(&self) -> String;

    /// Applies the backend-tuning fields of `options` before compilation
    /// (called by [`crate::Engine::new`]); the default implementation
    /// ignores every knob.
    ///
    /// Each backend applies only the fields that concern it — the CPU model
    /// takes [`EngineOptions::lanes`], the processor backend takes
    /// [`EngineOptions::cores`] — and leaves its configuration untouched
    /// when the field is `None`.
    ///
    /// # Errors
    ///
    /// Returns an error when an option value is structurally invalid for
    /// this backend (e.g. a zero core count).
    fn configure(&mut self, _options: &EngineOptions) -> Result<(), BackendError> {
        Ok(())
    }

    /// Per-variable reachability of `compiled`'s program, when this backend
    /// supports incremental session evaluation; `None` (the default) makes
    /// [`crate::Engine`] sessions fall back to full passes.
    ///
    /// Backends that return `Some` must execute single-query batches with
    /// arithmetic bit-for-bit identical to
    /// [`OpList::run_into`](spn_core::flatten::OpList::run_into), because
    /// session deltas interleave incremental cone re-execution with full
    /// passes and the two must agree exactly.
    fn cone_analysis(&self, _compiled: &Self::Compiled) -> Option<Arc<ConeAnalysis>> {
        None
    }

    /// Compiles `ops` into this platform's executable artifact.
    ///
    /// This is the expensive, once-per-circuit phase; everything derivable
    /// from the program alone (schedules, bank assignments, modelled cycle
    /// counts) belongs here, not in the per-batch path.
    ///
    /// # Errors
    ///
    /// Returns an error when the program cannot be compiled for this
    /// platform.
    fn compile(&self, ops: &OpList) -> Result<Self::Compiled, BackendError>;

    /// Executes every query of `batch` against `compiled`, reusing
    /// `buffers` and the platform-specific `scratch` for all storage.
    ///
    /// # Errors
    ///
    /// Returns an error when the batch does not match the compiled program
    /// or the platform fails structurally.
    fn execute_batch(
        &self,
        compiled: &Self::Compiled,
        batch: &EvidenceBatch,
        buffers: &mut ExecBuffers,
        scratch: &mut Self::Scratch,
    ) -> Result<BatchResult, BackendError>;

    /// Executes `batch` sharded across a fixed pool of scoped worker
    /// threads, each with its own [`WorkerState`].
    ///
    /// The batch is split into [`Parallelism::shards_for`] contiguous
    /// sub-batches; worker `i` runs shard `i` through the ordinary
    /// [`Backend::execute_batch`] hot loop, and the shard results are
    /// stitched back together in shard order.  Because every query is
    /// computed by the identical per-query kernel and the performance
    /// counters merge associatively, the result — values *and* counters — is
    /// bit-for-bit identical to the serial path regardless of the worker
    /// count.
    ///
    /// `workers` is the caller-owned pool of per-worker states; it is grown
    /// (never shrunk) to the shard count, so its allocations persist across
    /// batches.  Batches too small to shard (see [`Parallelism::min_shard`])
    /// run serially on the first worker's state without spawning threads.
    ///
    /// # Errors
    ///
    /// Returns the first failing shard's error (in shard order), or any
    /// error the serial path can produce.
    fn execute_batch_parallel(
        &self,
        compiled: &Self::Compiled,
        batch: &EvidenceBatch,
        parallelism: &Parallelism,
        workers: &mut Vec<WorkerState<Self>>,
    ) -> Result<BatchResult, BackendError>
    where
        Self: Sync,
        Self::Compiled: Sync,
    {
        let shards = parallelism.shards_for(batch.len());
        while workers.len() < shards.max(1) {
            workers.push(WorkerState::default());
        }
        if shards <= 1 {
            let worker = &mut workers[0];
            return self.execute_batch(compiled, batch, &mut worker.buffers, &mut worker.scratch);
        }

        // Evenly-sized contiguous shards: the first `remainder` shards take
        // one extra query, so shard boundaries are a pure function of
        // (batch length, shard count) and the stitched order is the batch
        // order.
        let base = batch.len() / shards;
        let remainder = batch.len() % shards;
        let mut sub_batches = Vec::with_capacity(shards);
        let mut start = 0usize;
        for shard in 0..shards {
            let len = base + usize::from(shard < remainder);
            sub_batches.push(batch.sub_batch(start, len));
            start += len;
        }

        let mut outcomes: Vec<Option<Result<BatchResult, BackendError>>> =
            (0..shards).map(|_| None).collect();
        std::thread::scope(|scope| {
            for ((worker, sub), outcome) in workers
                .iter_mut()
                .zip(&sub_batches)
                .zip(outcomes.iter_mut())
            {
                scope.spawn(move || {
                    *outcome = Some(self.execute_batch(
                        compiled,
                        sub,
                        &mut worker.buffers,
                        &mut worker.scratch,
                    ));
                });
            }
        });

        let mut values = Vec::with_capacity(batch.len());
        let mut perf = PerfReport::default();
        for outcome in outcomes {
            let shard_result = outcome.expect("every shard thread ran to completion")?;
            values.extend(shard_result.values);
            perf.merge(&shard_result.perf);
        }
        Ok(BatchResult { values, perf })
    }
}
