//! Compiler from sum-product networks to the custom SPN processor.
//!
//! The compiler implements the flow described in sec. IV of the paper:
//!
//! 1. the SPN is flattened and binarised into a scalar operation DAG
//!    ([`spn_core::flatten::OpList`]),
//! 2. operations are packed into **tiles** — sub-trees of the DAG that fit one
//!    pass through a PE tree, so intermediate values never leave the datapath
//!    ([`tile`]),
//! 3. tiles are list-scheduled cycle by cycle onto the trees, while register
//!    **banks are allocated in tandem with PE placement** (a PE can only write
//!    a subset of banks), crossbar **read-port conflicts are avoided**, and
//!    read-after-write hazards from the pipelined trees are respected
//!    ([`schedule`]),
//! 4. program inputs live in the vector data memory and are loaded row by
//!    row; when register pressure demands it, intermediate values are
//!    **spilled** back to memory ([`alloc`]),
//! 5. the result is a [`spn_processor::Program`] of VLIW instructions plus a
//!    [`CompileReport`] describing what the compiler did.
//!
//! ```
//! use rand::{rngs::StdRng, SeedableRng};
//! use spn_core::{random::{random_spn, RandomSpnConfig}, Evidence};
//! use spn_processor::{Processor, ProcessorConfig};
//! use spn_compiler::Compiler;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let spn = random_spn(&RandomSpnConfig::with_vars(8), &mut StdRng::seed_from_u64(1));
//! let compiler = Compiler::new(ProcessorConfig::ptree());
//! let compiled = compiler.compile(&spn)?;
//!
//! let evidence = Evidence::marginal(8);
//! let inputs = compiled.input_values(&evidence)?;
//! let processor = Processor::new(ProcessorConfig::ptree())?;
//! let run = processor.run(&compiled.program, &inputs)?;
//! assert!((run.output - spn.evaluate(&evidence)?).abs() < 1e-9);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;

pub mod alloc;
pub mod compiler;
pub mod report;
pub mod schedule;
pub mod tile;
pub mod verify;

pub use compiler::{CompiledArtifact, Compiler, CompilerOptions, PartitionedArtifact};
pub use error::CompileError;
pub use report::CompileReport;
pub use verify::{
    verify_artifact, verify_partitioned, verify_program, verify_program_with_exports,
};

/// Convenience alias for results returned by this crate.
pub type Result<T, E = CompileError> = std::result::Result<T, E>;
