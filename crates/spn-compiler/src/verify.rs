//! Static translation validation of emitted VLIW schedules.
//!
//! The scheduler is the most intricate part of the compiler: it interleaves
//! tile placement, bank allocation, pipelined write-back latencies, spills
//! and cross-partition exports.  This module re-checks its *output*
//! independently of how it was produced — a symbolic re-execution of the
//! instruction stream against the machine rules of
//! `spn_processor::processor`, with registers and memory holding *which
//! source operation's value* they contain instead of numbers:
//!
//! * every register read must be **dominated by a committed write** (a read
//!   of an in-flight value — committing this cycle or later — is the
//!   hardware read-before-write hazard),
//! * **port legality**: one read and one committed write per bank per
//!   cycle, a load occupying every bank's write port, a store every bank's
//!   read port,
//! * **crossbar/write-back legality**: a PE may only write banks in its
//!   [`writable_banks`](spn_processor::ProcessorConfig::writable_banks)
//!   span, instruction geometry must match the configuration,
//! * **dataflow correctness**: every arithmetic PE result must correspond
//!   to an operation of the source [`OpList`] (matched structurally up to
//!   operand order for the commutative PE kernels; the sampler comparator
//!   [`PeOp::Sam`] is order-sensitive and matched exactly), and at the end of the
//!   program the output location and every export hold exactly the value
//!   the op list says they should,
//! * **partition consistency**: the transfer sources of a
//!   [`PartitionedArtifact`]'s stages must agree with the partition
//!   structure recomputed from the op list, with every link pointing
//!   backwards at a live export,
//! * **cone soundness**: the artifact's [`ConeAnalysis`](spn_core::incremental::ConeAnalysis) must equal an
//!   independently recomputed forward reachability sweep.
//!
//! Findings report through [`spn_core::analysis::Diagnostic`] with the
//! `SPN2xx` (single program) and `SPN3xx` (partitioned/cones) codes
//! documented in `docs/ARCHITECTURE.md`.

use std::collections::HashMap;

use spn_core::analysis::{Diagnostic, Location, Severity};
use spn_core::flatten::{LeafSource, OpKind, OpList, OperandRef};
use spn_processor::isa::{CopyCmd, InputSlot, ValueLocation};
use spn_processor::{MemOp, PeOp, PePosition, Program, ReadSel, TransferSource, TreeInstr};

use crate::compiler::{CompiledArtifact, PartitionedArtifact};

/// Maximum diagnostics collected before the verifier gives up on an
/// artifact (a corrupt program tends to cascade; the first few findings
/// carry the signal).
const MAX_DIAGNOSTICS: usize = 64;

/// What a register, memory word or PE output symbolically holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
enum Sym {
    /// The literal value `0.0` (reset registers, `ReadSel::Zero`,
    /// zero-parameter inputs, idle PE outputs).
    Zero,
    /// The literal value `1.0` (`ReadSel::One`, unit-parameter inputs).
    One,
    /// The value of program input slot `i` (canonicalised: zero/one
    /// parameters collapse into `Zero`/`One`).
    Input(u32),
    /// The value of source op `i` (canonicalised to the first op computing
    /// the same expression, so duplicate subexpressions compare equal).
    Op(u32),
    /// A value the verifier cannot account for.
    Unknown,
}

impl std::fmt::Display for Sym {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Sym::Zero => write!(f, "0"),
            Sym::One => write!(f, "1"),
            Sym::Input(i) => write!(f, "input {i}"),
            Sym::Op(i) => write!(f, "op {i}"),
            Sym::Unknown => write!(f, "unknown"),
        }
    }
}

/// Structural summary of the op list: canonical symbols per operand and a
/// reverse map from `(kind, operands)` to the canonical op computing it.
struct OpIndex {
    /// Canonical symbol of every input slot.
    input_sym: Vec<Sym>,
    /// Canonical representative of every op (first op computing the same
    /// expression).
    rep: Vec<u32>,
    /// `(kind, unordered operand pair)` → canonical op index.
    by_expr: HashMap<(OpKind, Sym, Sym), u32>,
}

impl OpIndex {
    fn build(ops: &OpList) -> OpIndex {
        let input_sym: Vec<Sym> = ops
            .inputs()
            .iter()
            .enumerate()
            .map(|(i, leaf)| match leaf {
                LeafSource::Param(p) if *p == 0.0 => Sym::Zero,
                LeafSource::Param(p) if *p == 1.0 => Sym::One,
                _ => Sym::Input(i as u32),
            })
            .collect();
        let mut rep = Vec::with_capacity(ops.num_ops());
        let mut by_expr = HashMap::new();
        for (i, op) in ops.ops().iter().enumerate() {
            let a = operand_sym(op.lhs, &input_sym, &rep);
            let b = operand_sym(op.rhs, &input_sym, &rep);
            let (lo, hi) = canonical_operands(op.kind, a, b);
            let canonical = *by_expr.entry((op.kind, lo, hi)).or_insert(i as u32);
            rep.push(canonical);
        }
        OpIndex {
            input_sym,
            rep,
            by_expr,
        }
    }

    /// Canonical symbol of an op-list operand reference.
    fn sym(&self, operand: OperandRef) -> Sym {
        operand_sym(operand, &self.input_sym, &self.rep)
    }

    /// The canonical op computing `kind(a, b)`, if the op list contains one.
    fn lookup(&self, kind: OpKind, a: Sym, b: Sym) -> Option<Sym> {
        if a == Sym::Unknown || b == Sym::Unknown {
            return None;
        }
        let (lo, hi) = canonical_operands(kind, a, b);
        self.by_expr.get(&(kind, lo, hi)).map(|&i| Sym::Op(i))
    }
}

/// Canonical operand order for structural matching: commutative kinds sort
/// their operands; the sampler comparator is non-commutative, so its
/// operand order is semantic and preserved.
fn canonical_operands(kind: OpKind, a: Sym, b: Sym) -> (Sym, Sym) {
    if kind == OpKind::Sam || a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

fn operand_sym(operand: OperandRef, input_sym: &[Sym], rep: &[u32]) -> Sym {
    match operand {
        OperandRef::Input(i) => input_sym.get(i as usize).copied().unwrap_or(Sym::Unknown),
        OperandRef::Op(i) => rep
            .get(i as usize)
            .map(|&r| Sym::Op(r))
            .unwrap_or(Sym::Unknown),
    }
}

fn pe_op_kind(op: PeOp) -> Option<OpKind> {
    match op {
        PeOp::Add => Some(OpKind::Add),
        PeOp::Mul => Some(OpKind::Mul),
        PeOp::Max => Some(OpKind::Max),
        PeOp::Lse => Some(OpKind::LogAdd),
        PeOp::Sam => Some(OpKind::Sam),
        PeOp::Nop | PeOp::PassA | PeOp::PassB => None,
    }
}

/// One queued register-file write with its symbolic value.
struct PendingWrite {
    commit_cycle: u64,
    bank: usize,
    reg: usize,
    value: Sym,
}

/// The symbolic machine state during verification.
struct Machine<'a> {
    program: &'a Program,
    index: &'a OpIndex,
    /// `reg[bank][reg]` — committed register-file contents.
    reg: Vec<Vec<Sym>>,
    /// `mem[row][lane]` — data-memory contents.
    mem: Vec<Vec<Sym>>,
    pending: Vec<PendingWrite>,
    /// Banks whose single write port is booked, per commit cycle.
    write_ports: HashMap<(usize, u64), ()>,
    /// Banks whose single read port is booked this cycle.
    read_ports: Vec<bool>,
    diagnostics: Vec<Diagnostic>,
}

impl<'a> Machine<'a> {
    fn new(program: &'a Program, index: &'a OpIndex) -> Machine<'a> {
        let config = &program.config;
        let banks = config.total_banks();
        let mut mem = vec![vec![Sym::Zero; banks]; program.memory_rows_used];
        for (i, slot) in program.input_layout.iter().enumerate() {
            let InputSlot { row, lane } = *slot;
            if (row as usize) < mem.len() && (lane as usize) < banks {
                mem[row as usize][lane as usize] =
                    index.input_sym.get(i).copied().unwrap_or(Sym::Unknown);
            }
        }
        Machine {
            program,
            index,
            reg: vec![vec![Sym::Zero; config.regs_per_bank]; banks],
            mem,
            pending: Vec::new(),
            write_ports: HashMap::new(),
            read_ports: vec![false; banks],
            diagnostics: Vec::new(),
        }
    }

    fn push(&mut self, code: &'static str, cycle: u64, message: String) {
        if self.diagnostics.len() < MAX_DIAGNOSTICS {
            self.diagnostics.push(Diagnostic::new(
                code,
                Severity::Error,
                Location::Cycle(cycle),
                message,
            ));
        }
    }

    fn saturated(&self) -> bool {
        self.diagnostics.len() >= MAX_DIAGNOSTICS
    }

    /// Applies every pending write committing strictly before `cycle`, in
    /// commit order (port booking already guarantees at most one write per
    /// bank per commit cycle).
    fn commit_ready(&mut self, cycle: u64) {
        let mut ready = Vec::new();
        let mut i = 0;
        while i < self.pending.len() {
            if self.pending[i].commit_cycle < cycle {
                ready.push(self.pending.swap_remove(i));
            } else {
                i += 1;
            }
        }
        ready.sort_by_key(|w| w.commit_cycle);
        for w in ready {
            self.reg[w.bank][w.reg] = w.value;
        }
    }

    /// Books the write port of `bank` at `commit_cycle`; reports SPN202 on
    /// a conflict.
    fn book_write_port(&mut self, bank: usize, commit_cycle: u64, cycle: u64) {
        if self.write_ports.insert((bank, commit_cycle), ()).is_some() {
            self.push(
                "SPN202",
                cycle,
                format!("two writes commit to bank {bank} in cycle {commit_cycle}"),
            );
        }
    }

    /// Books the read port of `bank` this cycle; reports SPN203 on a
    /// conflict.
    fn book_read_port(&mut self, bank: usize, cycle: u64) {
        if self.read_ports[bank] {
            self.push(
                "SPN203",
                cycle,
                format!("two reads of bank {bank} in one cycle"),
            );
        }
        self.read_ports[bank] = true;
    }

    /// Reports SPN201 when `(bank, reg)` has an in-flight write (committing
    /// this cycle or later).
    fn check_no_inflight(&mut self, bank: usize, reg: usize, cycle: u64) {
        if self
            .pending
            .iter()
            .any(|w| w.bank == bank && w.reg == reg && w.commit_cycle >= cycle)
        {
            self.push(
                "SPN201",
                cycle,
                format!("read of bank {bank} register {reg} before its write commits"),
            );
        }
    }

    fn enqueue(&mut self, bank: usize, reg: usize, value: Sym, commit_cycle: u64, cycle: u64) {
        self.book_write_port(bank, commit_cycle, cycle);
        self.pending.push(PendingWrite {
            commit_cycle,
            bank,
            reg,
            value,
        });
    }

    fn step(&mut self, cycle: u64) {
        let program = self.program;
        let config = &program.config;
        let banks = config.total_banks();
        let instr = &program.instructions[cycle as usize];
        self.read_ports.iter_mut().for_each(|b| *b = false);
        self.commit_ready(cycle);

        if instr.trees.len() != config.num_trees {
            self.push(
                "SPN205",
                cycle,
                format!(
                    "instruction configures {} trees, processor has {}",
                    instr.trees.len(),
                    config.num_trees
                ),
            );
            return;
        }

        // 1. Memory load: books every bank's write port this cycle.
        if let MemOp::Load { row, reg } = instr.mem {
            if row as usize >= self.program.memory_rows_used {
                self.push(
                    "SPN206",
                    cycle,
                    format!(
                        "load of row {row} beyond the program's {} rows",
                        self.program.memory_rows_used
                    ),
                );
            } else if (reg as usize) < config.regs_per_bank {
                for bank in 0..banks {
                    let value = self.mem[row as usize][bank];
                    self.enqueue(bank, reg as usize, value, cycle, cycle);
                }
            } else {
                self.push(
                    "SPN205",
                    cycle,
                    format!("load into register {reg} out of range"),
                );
            }
        }

        // 2. Crossbar reads and symbolic tree evaluation.
        let mut tree_outputs: Vec<Vec<Vec<Sym>>> = Vec::with_capacity(instr.trees.len());
        for tree_instr in &instr.trees {
            tree_outputs.push(self.eval_tree(tree_instr, cycle));
        }

        // 3. PE write-backs with their pipeline latency.
        for (tree_idx, tree_instr) in instr.trees.iter().enumerate() {
            for w in &tree_instr.writes {
                let (level, pe) = (w.level as usize, w.pe as usize);
                if level >= config.tree_levels || pe >= config.pes_at_level(level) {
                    self.push(
                        "SPN205",
                        cycle,
                        format!("write from non-existent PE level {level} index {pe}"),
                    );
                    continue;
                }
                let position = PePosition {
                    tree: tree_idx,
                    level,
                    index: pe,
                };
                let bank = w.bank as usize;
                if bank >= banks || !config.can_write(position, bank) {
                    self.push(
                        "SPN204",
                        cycle,
                        format!(
                            "tree {tree_idx} level {level} PE {pe} cannot write bank {bank} \
                             (writable span {:?})",
                            config.writable_banks(position)
                        ),
                    );
                    continue;
                }
                if w.reg as usize >= config.regs_per_bank {
                    self.push(
                        "SPN205",
                        cycle,
                        format!("write to register {} out of range", w.reg),
                    );
                    continue;
                }
                let value = tree_outputs[tree_idx]
                    .get(level)
                    .and_then(|l| l.get(pe))
                    .copied()
                    .unwrap_or(Sym::Unknown);
                if value == Sym::Unknown {
                    self.push(
                        "SPN208",
                        cycle,
                        format!(
                            "tree {tree_idx} level {level} PE {pe} writes a value matching \
                             no source operation"
                        ),
                    );
                }
                let commit_cycle = cycle + config.commit_latency(level);
                self.enqueue(bank, w.reg as usize, value, commit_cycle, cycle);
            }
        }

        // 4. Intra-bank copies.
        for copy in &instr.copies {
            let CopyCmd { bank, src, dst } = *copy;
            let (bank, src, dst) = (bank as usize, src as usize, dst as usize);
            if bank >= banks || src >= config.regs_per_bank || dst >= config.regs_per_bank {
                self.push("SPN205", cycle, "copy addresses out of range".to_string());
                continue;
            }
            self.check_no_inflight(bank, src, cycle);
            self.book_read_port(bank, cycle);
            let value = self.reg[bank][src];
            self.enqueue(bank, dst, value, cycle, cycle);
        }

        // 5. Store: reads the whole register row through every bank's port.
        if let MemOp::Store { row, reg } = instr.mem {
            if row as usize >= self.program.memory_rows_used {
                self.push(
                    "SPN206",
                    cycle,
                    format!(
                        "store to row {row} beyond the program's {} rows",
                        self.program.memory_rows_used
                    ),
                );
            } else if (reg as usize) < config.regs_per_bank {
                for bank in 0..banks {
                    self.check_no_inflight(bank, reg as usize, cycle);
                    self.book_read_port(bank, cycle);
                    self.mem[row as usize][bank] = self.reg[bank][reg as usize];
                }
            } else {
                self.push(
                    "SPN205",
                    cycle,
                    format!("store from register {reg} out of range"),
                );
            }
        }
    }

    /// Resolves one tree's crossbar reads and evaluates its PEs
    /// symbolically, returning level-major outputs.
    fn eval_tree(&mut self, tree_instr: &TreeInstr, cycle: u64) -> Vec<Vec<Sym>> {
        let config = &self.program.config;
        let banks = config.total_banks();
        let expected_inputs = config.tree_inputs_per_tree();
        let expected_pes: usize = (0..config.tree_levels)
            .map(|l| config.pes_at_level(l))
            .sum();
        if tree_instr.reads.len() != expected_inputs || tree_instr.pe_ops.len() != expected_pes {
            self.push(
                "SPN205",
                cycle,
                format!(
                    "tree instruction geometry mismatch: {} reads / {} PE opcodes, \
                     expected {expected_inputs} / {expected_pes}",
                    tree_instr.reads.len(),
                    tree_instr.pe_ops.len()
                ),
            );
            return Vec::new();
        }

        let mut inputs = Vec::with_capacity(expected_inputs);
        for sel in &tree_instr.reads {
            let value = match *sel {
                ReadSel::None | ReadSel::Zero => Sym::Zero,
                ReadSel::One => Sym::One,
                ReadSel::Reg { bank, reg } => {
                    let (bank, reg) = (bank as usize, reg as usize);
                    if bank >= banks || reg >= config.regs_per_bank {
                        self.push(
                            "SPN205",
                            cycle,
                            format!("read of bank {bank} register {reg} out of range"),
                        );
                        Sym::Unknown
                    } else {
                        self.check_no_inflight(bank, reg, cycle);
                        self.book_read_port(bank, cycle);
                        self.reg[bank][reg]
                    }
                }
            };
            inputs.push(value);
        }

        let mut levels: Vec<Vec<Sym>> = Vec::with_capacity(config.tree_levels);
        for level in 0..config.tree_levels {
            let count = config.pes_at_level(level);
            let mut outputs = Vec::with_capacity(count);
            for index in 0..count {
                let (a, b) = if level == 0 {
                    (inputs[2 * index], inputs[2 * index + 1])
                } else {
                    let below = &levels[level - 1];
                    (below[2 * index], below[2 * index + 1])
                };
                let flat = TreeInstr::pe_flat_index(config, level, index);
                let value = match tree_instr.pe_ops[flat] {
                    PeOp::Nop => Sym::Zero,
                    PeOp::PassA => a,
                    PeOp::PassB => b,
                    op => {
                        let kind = pe_op_kind(op).expect("arithmetic op");
                        self.index.lookup(kind, a, b).unwrap_or(Sym::Unknown)
                    }
                };
                outputs.push(value);
            }
            levels.push(outputs);
        }
        levels
    }

    /// The committed symbol at a result location after the pipeline drains.
    fn location_value(&self, location: ValueLocation) -> Sym {
        match location {
            ValueLocation::Register { bank, reg } => self
                .reg
                .get(bank as usize)
                .and_then(|b| b.get(reg as usize))
                .copied()
                .unwrap_or(Sym::Unknown),
            ValueLocation::Memory { row, lane } => self
                .mem
                .get(row as usize)
                .and_then(|r| r.get(lane as usize))
                .copied()
                .unwrap_or(Sym::Unknown),
        }
    }
}

/// Translation-validates one emitted program against its source op list:
/// symbolic re-execution under the processor's hazard, port and
/// connectivity rules, then an end-state check that the output location
/// holds the op list's output value.
///
/// Returns every finding; an empty vector means the schedule is verified.
pub fn verify_program(program: &Program, ops: &OpList) -> Vec<Diagnostic> {
    verify_program_with_exports(program, ops, &[])
}

/// [`verify_program`] for programs that additionally promise `exports` to
/// be live at their recorded locations at the end of the program (the
/// partitioned-compilation contract).
pub fn verify_program_with_exports(
    program: &Program,
    ops: &OpList,
    exports: &[OperandRef],
) -> Vec<Diagnostic> {
    let index = OpIndex::build(ops);
    let mut machine = Machine::new(program, &index);

    if program.input_layout.len() != ops.num_inputs() {
        machine.diagnostics.push(Diagnostic::new(
            "SPN205",
            Severity::Error,
            Location::Artifact,
            format!(
                "program lays out {} inputs, op list has {}",
                program.input_layout.len(),
                ops.num_inputs()
            ),
        ));
    }

    for cycle in 0..program.instructions.len() as u64 {
        machine.step(cycle);
        if machine.saturated() {
            return machine.diagnostics;
        }
    }
    // Drain the pipeline.
    machine.commit_ready(u64::MAX);

    let expected = index.sym(ops.output());
    let actual = machine.location_value(program.output);
    if actual != expected || expected == Sym::Unknown {
        machine.diagnostics.push(Diagnostic::new(
            "SPN207",
            Severity::Error,
            Location::Artifact,
            format!(
                "output location holds {actual}, expected {expected} \
                 (the op list's output)"
            ),
        ));
    }

    if program.exports.len() != exports.len() {
        machine.diagnostics.push(Diagnostic::new(
            "SPN207",
            Severity::Error,
            Location::Artifact,
            format!(
                "program records {} exports, {} expected",
                program.exports.len(),
                exports.len()
            ),
        ));
    } else {
        for (i, (&location, &operand)) in program.exports.iter().zip(exports).enumerate() {
            let expected = index.sym(operand);
            let actual = machine.location_value(location);
            if actual != expected || expected == Sym::Unknown {
                machine.diagnostics.push(Diagnostic::new(
                    "SPN207",
                    Severity::Error,
                    Location::Artifact,
                    format!("export {i} holds {actual}, expected {expected}"),
                ));
            }
        }
    }
    machine.diagnostics
}

/// Verifies a compiled artifact: the schedule ([`verify_program`]) plus a
/// soundness check of its precomputed
/// [`ConeAnalysis`](spn_core::incremental::ConeAnalysis) against an
/// independently recomputed forward reachability sweep (`SPN303`).
pub fn verify_artifact(artifact: &CompiledArtifact) -> Vec<Diagnostic> {
    let mut diagnostics = verify_program(&artifact.program, &artifact.op_list);
    diagnostics.extend(verify_cones(artifact));
    diagnostics
}

/// Recomputes per-variable reachability with a plain forward marking sweep
/// and compares it to the artifact's cached [`ConeAnalysis`].
fn verify_cones(artifact: &CompiledArtifact) -> Vec<Diagnostic> {
    let ops = &artifact.op_list;
    let cones = artifact.cone_analysis();
    let mut diagnostics = Vec::new();
    for var in 0..ops.num_vars() {
        let mut input_dirty = vec![false; ops.num_inputs()];
        for (i, leaf) in ops.inputs().iter().enumerate() {
            if let LeafSource::Indicator { var: v, .. } = leaf {
                if v.0 as usize == var {
                    input_dirty[i] = true;
                }
            }
        }
        let mut op_dirty = vec![false; ops.num_ops()];
        let mut expected = Vec::new();
        for (i, op) in ops.ops().iter().enumerate() {
            let touched = |r: OperandRef| match r {
                OperandRef::Input(k) => input_dirty[k as usize],
                OperandRef::Op(k) => op_dirty[k as usize],
            };
            if touched(op.lhs) || touched(op.rhs) {
                op_dirty[i] = true;
                expected.push(i as u32);
            }
        }
        if cones.cone(var) != expected.as_slice() {
            diagnostics.push(Diagnostic::new(
                "SPN303",
                Severity::Error,
                Location::Input(var as u32),
                format!(
                    "cone of variable {var} disagrees with recomputed reachability \
                     ({} vs {} ops)",
                    cones.cone(var).len(),
                    expected.len()
                ),
            ));
        }
    }
    diagnostics
}

/// Verifies a partitioned artifact: every stage's program against its
/// recomputed [`OpList::partition`] slice (schedule + exports), plus
/// cross-partition consistency of the transfer sources (`SPN301`) and the
/// overall pipeline structure (`SPN302`).
pub fn verify_partitioned(artifact: &PartitionedArtifact) -> Vec<Diagnostic> {
    let mut diagnostics = Vec::new();
    let stages = &artifact.parts.stages;
    let parts = artifact.op_list.partition(stages.len().max(1));

    if parts.len() != stages.len() {
        diagnostics.push(Diagnostic::new(
            "SPN302",
            Severity::Error,
            Location::Artifact,
            format!(
                "partitioned program has {} stages, op list partitions into {}",
                stages.len(),
                parts.len()
            ),
        ));
        return diagnostics;
    }
    if artifact.parts.num_inputs != artifact.op_list.num_inputs() {
        diagnostics.push(Diagnostic::new(
            "SPN302",
            Severity::Error,
            Location::Artifact,
            format!(
                "pipeline records {} global inputs, op list has {}",
                artifact.parts.num_inputs,
                artifact.op_list.num_inputs()
            ),
        ));
    }

    for (stage_idx, (stage, part)) in stages.iter().zip(&parts).enumerate() {
        // Transfer sources must mirror the partition's import structure.
        if stage.inputs.len() != part.inputs.len() {
            diagnostics.push(Diagnostic::new(
                "SPN301",
                Severity::Error,
                Location::Stage(stage_idx as u32),
                format!(
                    "stage {stage_idx} wires {} transfer sources, partition expects {}",
                    stage.inputs.len(),
                    part.inputs.len()
                ),
            ));
        } else {
            for (slot, (source, expected)) in stage.inputs.iter().zip(&part.inputs).enumerate() {
                let consistent = match (*source, *expected) {
                    (TransferSource::Input(i), spn_core::PartInput::Global(g)) => i == g,
                    (
                        TransferSource::Core { core, export },
                        spn_core::PartInput::Link { part: p, export: e },
                    ) => {
                        core == p
                            && export == e
                            && (core as usize) < stage_idx
                            && parts
                                .get(core as usize)
                                .map(|src| (export as usize) < src.exports.len())
                                .unwrap_or(false)
                    }
                    _ => false,
                };
                if !consistent {
                    diagnostics.push(Diagnostic::new(
                        "SPN301",
                        Severity::Error,
                        Location::Stage(stage_idx as u32),
                        format!(
                            "stage {stage_idx} external-input slot {slot} ({source:?}) is \
                             inconsistent with the partition structure ({expected:?})"
                        ),
                    ));
                }
            }
        }

        // Each stage must be a verified schedule for its op slice, with the
        // partition's exports live at the end.
        let exports: Vec<OperandRef> = part.exports.iter().map(|&i| OperandRef::Op(i)).collect();
        for mut d in verify_program_with_exports(&stage.program, &part.ops, &exports) {
            d.message = format!("stage {stage_idx}: {}", d.message);
            if d.location == Location::Artifact {
                d.location = Location::Stage(stage_idx as u32);
            }
            diagnostics.push(d);
        }
        if diagnostics.len() >= MAX_DIAGNOSTICS {
            break;
        }
    }
    diagnostics
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Compiler;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use spn_core::random::{random_spn, RandomSpnConfig};
    use spn_processor::ProcessorConfig;

    #[test]
    fn compiled_programs_verify_clean() {
        let mut rng = StdRng::seed_from_u64(21);
        for vars in [4, 8, 14] {
            let spn = random_spn(&RandomSpnConfig::with_vars(vars), &mut rng);
            let compiled = Compiler::new(ProcessorConfig::ptree())
                .compile(&spn)
                .unwrap();
            let diags = verify_artifact(&compiled);
            assert!(diags.is_empty(), "vars={vars}: {diags:?}");
        }
    }

    #[test]
    fn vector_configuration_verifies_clean() {
        let mut rng = StdRng::seed_from_u64(22);
        let spn = random_spn(&RandomSpnConfig::with_vars(10), &mut rng);
        let compiled = Compiler::new(ProcessorConfig::pvect())
            .compile(&spn)
            .unwrap();
        assert!(verify_artifact(&compiled).is_empty());
    }

    #[test]
    fn partitioned_programs_verify_clean() {
        let mut rng = StdRng::seed_from_u64(23);
        let spn = random_spn(&RandomSpnConfig::with_vars(12), &mut rng);
        let ops = spn_core::flatten::OpList::from_spn(&spn);
        for cores in [2, 3] {
            let parted = Compiler::new(ProcessorConfig::ptree())
                .compile_partitioned(ops.clone(), cores)
                .unwrap();
            let diags = verify_partitioned(&parted);
            assert!(diags.is_empty(), "cores={cores}: {diags:?}");
        }
    }
}
