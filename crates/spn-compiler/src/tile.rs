//! Tile extraction: packing the operation DAG into PE-tree shaped passes.
//!
//! A *tile* is a connected sub-tree of the flattened operation DAG that is
//! executed by one pass through a PE tree: its root occupies a PE at level
//! `depth-1`, internal operations occupy the PEs below it, external operands
//! enter at the leaf level (passed up through forwarding PEs where needed),
//! and only the root's result leaves the tree.
//!
//! Tiles are extracted by maximal munch over the DAG in reverse topological
//! order: an operation joins its consumer's tile when it has exactly one use
//! and the tile still has depth budget.  Every operation with fanout greater
//! than one becomes a tile root, because its value must be written back to the
//! register file anyway.

use spn_core::flatten::{OpKind, OpList, OperandRef};

/// One operation placed inside a tile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlacedOp {
    /// Index of the operation in the originating [`OpList`].
    pub op: usize,
    /// Level within the tile (0 = crossbar-fed level, `depth-1` = tile root).
    pub level: usize,
    /// Position within the level, relative to the tile (root has position 0).
    pub pos: usize,
    /// The arithmetic the PE performs.
    pub kind: OpKind,
}

/// A forwarding PE inside a tile (routes an external operand upwards).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PassThrough {
    /// Level of the forwarding PE within the tile.
    pub level: usize,
    /// Position within the level, relative to the tile.
    pub pos: usize,
}

/// An external operand entering the tile at the leaf level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LeafRead {
    /// Tree-input slot relative to the tile (0 .. 2^depth).
    pub slot: usize,
    /// The value being read.
    pub operand: OperandRef,
}

/// A PE-tree shaped group of operations scheduled as one unit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tile {
    /// Index of the root operation in the [`OpList`].
    pub root: usize,
    /// Number of PE levels the tile occupies (1 ..= tree levels).
    pub depth: usize,
    /// Operations executed by the tile (always contains the root).
    pub ops: Vec<PlacedOp>,
    /// Forwarding PEs used to route external operands upwards.
    pub passes: Vec<PassThrough>,
    /// External operands and the leaf slots they enter at.
    pub reads: Vec<LeafRead>,
}

impl Tile {
    /// Number of leaf-level PEs the tile occupies when placed
    /// (`2^(depth-1)`).
    pub fn leaf_footprint(&self) -> usize {
        1 << (self.depth - 1)
    }

    /// The external operands of the tile, in leaf-slot order (may contain
    /// duplicates when the same value feeds several slots).
    pub fn external_operands(&self) -> impl Iterator<Item = OperandRef> + '_ {
        self.reads.iter().map(|r| r.operand)
    }

    /// Number of arithmetic operations in the tile.
    pub fn num_ops(&self) -> usize {
        self.ops.len()
    }
}

/// Extracts tiles from `ops` with at most `max_depth` PE levels per tile.
///
/// Every operation belongs to exactly one tile.  Tiles are returned in
/// ascending root-operation order, which is a valid topological order of the
/// tile dependency graph.
///
/// # Panics
///
/// Panics if `max_depth` is zero.
pub fn extract_tiles(ops: &OpList, max_depth: usize) -> Vec<Tile> {
    extract_tiles_with_exports(ops, max_depth, &[])
}

/// [`extract_tiles`] with export obligations: every operand in `exports`
/// gets an extra phantom use, so an exported operation is never absorbed
/// into its consumer's tile — it becomes a tile root, and its result is
/// committed to the register file where a multi-core runtime can peek it
/// (tile-internal values only ever exist inside the PE datapath).
///
/// # Panics
///
/// Panics if `max_depth` is zero.
pub fn extract_tiles_with_exports(
    ops: &OpList,
    max_depth: usize,
    exports: &[OperandRef],
) -> Vec<Tile> {
    assert!(max_depth >= 1, "tiles need at least one level");
    let n = ops.num_ops();

    // Fanout of each op result: uses by later ops plus one if it is the
    // output or an exported value.
    let mut fanout = vec![0usize; n];
    for op in ops.ops() {
        for operand in [op.lhs, op.rhs] {
            if let OperandRef::Op(i) = operand {
                fanout[i as usize] += 1;
            }
        }
    }
    if let OperandRef::Op(i) = ops.output() {
        fanout[i as usize] += 1;
    }
    for &export in exports {
        if let OperandRef::Op(i) = export {
            fanout[i as usize] += 1;
        }
    }

    let mut owner: Vec<Option<usize>> = vec![None; n]; // op -> tile root
    let mut tiles = Vec::new();

    for root in (0..n).rev() {
        if owner[root].is_some() {
            continue;
        }
        // Grow the tile rooted at `root` by recursive munch (iterative, via an
        // explicit stack of (op, distance-from-root, path)).
        let mut members: Vec<(usize, usize, usize)> = Vec::new(); // (op, dist, path)
        let mut externals: Vec<(usize, usize, usize, OperandRef)> = Vec::new(); // (dist of consumer, path of consumer, side, value)
        let mut stack = vec![(root, 0usize, 0usize)];
        owner[root] = Some(root);
        let mut max_dist = 0usize;
        while let Some((op_idx, dist, path)) = stack.pop() {
            members.push((op_idx, dist, path));
            max_dist = max_dist.max(dist);
            let op = ops.ops()[op_idx];
            for (side, operand) in [(0usize, op.lhs), (1usize, op.rhs)] {
                let child_path = path * 2 + side;
                let absorb = match operand {
                    OperandRef::Op(j) => {
                        let j = j as usize;
                        dist + 1 < max_depth && fanout[j] == 1 && owner[j].is_none()
                    }
                    OperandRef::Input(_) => false,
                };
                if let (true, OperandRef::Op(j)) = (absorb, operand) {
                    let j = j as usize;
                    owner[j] = Some(root);
                    stack.push((j, dist + 1, child_path));
                } else {
                    externals.push((dist, path, side, operand));
                }
            }
        }

        let depth = max_dist + 1;
        // Convert distances (from the root) into levels (from the leaves).
        let mut placed_ops = Vec::with_capacity(members.len());
        for (op_idx, dist, path) in &members {
            placed_ops.push(PlacedOp {
                op: *op_idx,
                level: depth - 1 - dist,
                pos: *path,
                kind: ops.ops()[*op_idx].kind,
            });
        }
        let mut passes = Vec::new();
        let mut reads = Vec::new();
        for (dist, path, side, operand) in externals {
            let consumer_level = depth - 1 - dist;
            // The operand must appear as the `side` input of the consumer PE.
            if consumer_level == 0 {
                reads.push(LeafRead {
                    slot: path * 2 + side,
                    operand,
                });
            } else {
                // Chain of forwarding PEs from level consumer_level-1 down to 0.
                let mut pos = path * 2 + side;
                for level in (0..consumer_level).rev() {
                    passes.push(PassThrough { level, pos });
                    if level > 0 {
                        pos *= 2;
                    }
                }
                reads.push(LeafRead {
                    slot: pos * 2,
                    operand,
                });
            }
        }
        placed_ops.sort_by_key(|p| (p.level, p.pos));
        tiles.push(Tile {
            root,
            depth,
            ops: placed_ops,
            passes,
            reads,
        });
    }

    tiles.sort_by_key(|t| t.root);
    tiles
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use spn_core::random::{random_spn, RandomSpnConfig};
    use spn_core::{SpnBuilder, VarId};

    fn small_ops() -> OpList {
        // ((x0 * x1) + (nx0 * nx1)) weighted mixture: 3-level op DAG.
        let mut b = SpnBuilder::new(2);
        let x0 = b.indicator(VarId(0), true);
        let nx0 = b.indicator(VarId(0), false);
        let x1 = b.indicator(VarId(1), true);
        let nx1 = b.indicator(VarId(1), false);
        let p0 = b.product(vec![x0, x1]).unwrap();
        let p1 = b.product(vec![nx0, nx1]).unwrap();
        let root = b.sum(vec![(p0, 0.3), (p1, 0.7)]).unwrap();
        OpList::from_spn(&b.finish(root).unwrap())
    }

    /// Every op appears in exactly one tile.
    fn check_partition(ops: &OpList, tiles: &[Tile]) {
        let mut seen = vec![false; ops.num_ops()];
        for tile in tiles {
            for p in &tile.ops {
                assert!(!seen[p.op], "op {} in two tiles", p.op);
                seen[p.op] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "some ops not covered by tiles");
    }

    /// Structural soundness of a tile: root at the top level, children of each
    /// placed op are either placed at the expected position one level below or
    /// reachable from a leaf read through the expected pass chain.
    fn check_tile_wiring(ops: &OpList, tile: &Tile) {
        use std::collections::HashMap;
        let placed: HashMap<(usize, usize), &PlacedOp> =
            tile.ops.iter().map(|p| ((p.level, p.pos), p)).collect();
        let passes: std::collections::HashSet<(usize, usize)> =
            tile.passes.iter().map(|p| (p.level, p.pos)).collect();
        let reads: HashMap<usize, OperandRef> =
            tile.reads.iter().map(|r| (r.slot, r.operand)).collect();

        // Resolve what value each position (level, pos) produces.
        fn value_at(
            level: isize,
            pos: usize,
            placed: &HashMap<(usize, usize), &PlacedOp>,
            passes: &std::collections::HashSet<(usize, usize)>,
            reads: &HashMap<usize, OperandRef>,
        ) -> Option<OperandRef> {
            if level < 0 {
                return reads.get(&pos).copied();
            }
            let key = (level as usize, pos);
            if let Some(p) = placed.get(&key) {
                return Some(OperandRef::Op(p.op as u32));
            }
            if passes.contains(&key) {
                // Forwarding PEs always forward their left input.
                return value_at(level - 1, pos * 2, placed, passes, reads);
            }
            None
        }

        let root = tile.ops.iter().find(|p| p.op == tile.root).unwrap();
        assert_eq!(root.level, tile.depth - 1);
        assert_eq!(root.pos, 0);

        for p in &tile.ops {
            let op = ops.ops()[p.op];
            for (side, expected) in [(0usize, op.lhs), (1usize, op.rhs)] {
                let got = value_at(
                    p.level as isize - 1,
                    p.pos * 2 + side,
                    &placed,
                    &passes,
                    &reads,
                )
                .unwrap_or_else(|| panic!("op {} side {side} has no wired value", p.op));
                assert_eq!(got, expected, "op {} side {side} wired incorrectly", p.op);
            }
        }
    }

    #[test]
    fn depth_one_tiles_are_single_ops() {
        let ops = small_ops();
        let tiles = extract_tiles(&ops, 1);
        assert_eq!(tiles.len(), ops.num_ops());
        check_partition(&ops, &tiles);
        for tile in &tiles {
            assert_eq!(tile.depth, 1);
            assert_eq!(tile.ops.len(), 1);
            assert_eq!(tile.reads.len(), 2);
            assert!(tile.passes.is_empty());
            check_tile_wiring(&ops, tile);
        }
    }

    #[test]
    fn deep_tiles_absorb_single_use_chains() {
        let ops = small_ops();
        let tiles = extract_tiles(&ops, 4);
        check_partition(&ops, &tiles);
        // The whole 5-op expression fits one tile of depth 3.
        assert!(tiles.len() < ops.num_ops());
        let biggest = tiles.iter().map(Tile::num_ops).max().unwrap();
        assert!(biggest >= 3);
        for tile in &tiles {
            assert!(tile.depth <= 4);
            check_tile_wiring(&ops, tile);
        }
    }

    #[test]
    fn shared_values_split_tiles() {
        // x*y used twice: the shared op must be its own tile root.
        let mut b = SpnBuilder::new(2);
        let x = b.indicator(VarId(0), true);
        let y = b.indicator(VarId(1), true);
        let shared = b.product(vec![x, y]).unwrap();
        let nx = b.indicator(VarId(0), false);
        let ny = b.indicator(VarId(1), false);
        let other = b.product(vec![nx, ny]).unwrap();
        let s1 = b.sum(vec![(shared, 0.5), (other, 0.5)]).unwrap();
        let s2 = b.sum(vec![(shared, 0.2), (other, 0.8)]).unwrap();
        let root = b.product(vec![s1, s2]).unwrap();
        // Root is not decomposable but flattening does not care; this is a
        // stress test for sharing.
        let ops = OpList::from_spn(&b.finish(root).unwrap());
        let tiles = extract_tiles(&ops, 4);
        check_partition(&ops, &tiles);
        for tile in &tiles {
            check_tile_wiring(&ops, tile);
        }
        // Find the op index of the shared product: it must be a tile root.
        let shared_roots: Vec<_> = tiles
            .iter()
            .filter(|t| {
                t.ops.len() == 1
                    && t.reads
                        .iter()
                        .all(|r| matches!(r.operand, OperandRef::Input(_)))
            })
            .collect();
        assert!(!shared_roots.is_empty());
    }

    #[test]
    fn random_spn_tiles_are_wired_correctly() {
        let mut rng = StdRng::seed_from_u64(17);
        let spn = random_spn(&RandomSpnConfig::with_vars(12), &mut rng);
        let ops = OpList::from_spn(&spn);
        for depth in [1, 2, 4] {
            let tiles = extract_tiles(&ops, depth);
            check_partition(&ops, &tiles);
            for tile in &tiles {
                assert!(tile.depth <= depth);
                assert!(tile.leaf_footprint() <= 1 << (depth - 1));
                check_tile_wiring(&ops, tile);
            }
        }
    }

    #[test]
    fn tiles_are_topologically_ordered() {
        let mut rng = StdRng::seed_from_u64(18);
        let spn = random_spn(&RandomSpnConfig::with_vars(10), &mut rng);
        let ops = OpList::from_spn(&spn);
        let tiles = extract_tiles(&ops, 4);
        use std::collections::HashMap;
        let root_of: HashMap<usize, usize> = tiles
            .iter()
            .flat_map(|t| t.ops.iter().map(move |p| (p.op, t.root)))
            .collect();
        for (i, tile) in tiles.iter().enumerate() {
            for operand in tile.external_operands() {
                if let OperandRef::Op(j) = operand {
                    let producer_root = root_of[&(j as usize)];
                    let producer_idx = tiles.iter().position(|t| t.root == producer_root).unwrap();
                    assert!(producer_idx < i, "tile order violates dependencies");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one level")]
    fn zero_depth_panics() {
        let ops = small_ops();
        let _ = extract_tiles(&ops, 0);
    }
}
