//! Public compiler driver.

use spn_core::flatten::{FlattenOptions, OpList};
use spn_core::{Evidence, Spn};
use spn_processor::config::ProcessorConfig;
use spn_processor::isa::Program;

use crate::report::CompileReport;
use crate::schedule::{schedule, ScheduleOptions};
use crate::tile::extract_tiles;
use crate::Result;

/// Options controlling the whole compilation pipeline.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CompilerOptions {
    /// Options passed to the flattening step.
    pub flatten: FlattenOptions,
    /// Options passed to the scheduler.
    pub schedule: ScheduleOptions,
    /// Maximum tile depth; `None` uses the full tree depth of the target.
    pub max_tile_depth: Option<usize>,
}

/// The result of compiling one SPN.
#[derive(Debug, Clone)]
pub struct Compiled {
    /// The executable VLIW program.
    pub program: Program,
    /// Statistics about the compilation.
    pub report: CompileReport,
    /// The flattened operation list the program was compiled from (needed to
    /// materialise input vectors for new evidence).
    pub op_list: OpList,
}

impl Compiled {
    /// Materialises the program's input vector for `evidence`.
    ///
    /// # Errors
    ///
    /// Returns an error when the evidence covers a different number of
    /// variables than the SPN the program was compiled from.
    pub fn input_values(&self, evidence: &Evidence) -> Result<Vec<f64>> {
        Ok(self.op_list.input_values(evidence)?)
    }
}

/// Compiler from SPNs to processor programs.
///
/// See the crate-level documentation for an end-to-end example.
#[derive(Debug, Clone)]
pub struct Compiler {
    config: ProcessorConfig,
    options: CompilerOptions,
}

impl Compiler {
    /// Creates a compiler targeting `config` with default options.
    pub fn new(config: ProcessorConfig) -> Self {
        Compiler {
            config,
            options: CompilerOptions::default(),
        }
    }

    /// Creates a compiler with explicit options.
    pub fn with_options(config: ProcessorConfig, options: CompilerOptions) -> Self {
        Compiler { config, options }
    }

    /// The processor configuration this compiler targets.
    pub fn config(&self) -> &ProcessorConfig {
        &self.config
    }

    /// Compiles an SPN into an executable program.
    ///
    /// # Errors
    ///
    /// Returns a [`crate::CompileError`] when the target configuration is
    /// invalid or the program cannot be made to fit it.
    pub fn compile(&self, spn: &Spn) -> Result<Compiled> {
        let op_list = OpList::from_spn_with(spn, self.options.flatten);
        self.compile_op_list(op_list)
    }

    /// Compiles an already-flattened operation list.
    ///
    /// # Errors
    ///
    /// Returns a [`crate::CompileError`] when the target configuration is
    /// invalid or the program cannot be made to fit it.
    pub fn compile_op_list(&self, op_list: OpList) -> Result<Compiled> {
        let depth = self
            .options
            .max_tile_depth
            .unwrap_or(self.config.tree_levels)
            .min(self.config.tree_levels)
            .max(1);
        let tiles = extract_tiles(&op_list, depth);
        let (program, report) = schedule(&self.config, &op_list, &tiles, &self.options.schedule)?;
        Ok(Compiled {
            program,
            report,
            op_list,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use spn_core::random::{random_spn, RandomSpnConfig};
    use spn_processor::Processor;

    #[test]
    fn compile_and_execute_round_trip() {
        let mut rng = StdRng::seed_from_u64(5);
        let spn = random_spn(&RandomSpnConfig::with_vars(14), &mut rng);
        let compiler = Compiler::new(ProcessorConfig::ptree());
        let compiled = compiler.compile(&spn).unwrap();
        assert_eq!(compiled.report.source_ops, compiled.op_list.num_ops());

        let evidence = Evidence::marginal(14);
        let inputs = compiled.input_values(&evidence).unwrap();
        let processor = Processor::new(ProcessorConfig::ptree()).unwrap();
        let run = processor.run(&compiled.program, &inputs).unwrap();
        let expected = spn.evaluate(&evidence).unwrap();
        assert!((run.output - expected).abs() < 1e-9 * expected.abs().max(1.0));
    }

    #[test]
    fn max_tile_depth_caps_packing() {
        let mut rng = StdRng::seed_from_u64(6);
        let spn = random_spn(&RandomSpnConfig::with_vars(16), &mut rng);
        let deep = Compiler::new(ProcessorConfig::ptree()).compile(&spn).unwrap();
        let shallow = Compiler::with_options(
            ProcessorConfig::ptree(),
            CompilerOptions {
                max_tile_depth: Some(1),
                ..Default::default()
            },
        )
        .compile(&spn)
        .unwrap();
        assert!(shallow.report.tiles >= deep.report.tiles);
        assert_eq!(shallow.report.tiles, shallow.op_list.num_ops());
    }

    #[test]
    fn evidence_mismatch_is_reported() {
        let mut rng = StdRng::seed_from_u64(7);
        let spn = random_spn(&RandomSpnConfig::with_vars(4), &mut rng);
        let compiled = Compiler::new(ProcessorConfig::pvect()).compile(&spn).unwrap();
        assert!(compiled.input_values(&Evidence::marginal(9)).is_err());
    }

    #[test]
    fn config_accessor_returns_target() {
        let compiler = Compiler::new(ProcessorConfig::pvect());
        assert_eq!(compiler.config().name, "Pvect");
    }
}
