//! Public compiler driver.

use spn_core::batch::{EvidenceBatch, InputRecipe};
use spn_core::flatten::{FlattenOptions, OpList, OperandRef, PartInput};
use spn_core::incremental::ConeAnalysis;
use spn_core::{Evidence, Spn};
use spn_processor::config::ProcessorConfig;
use spn_processor::isa::Program;
use spn_processor::multicore::{CoreProgram, PartitionedProgram, TransferSource};

use crate::report::CompileReport;
use crate::schedule::{schedule, schedule_with_exports, ScheduleOptions};
use crate::tile::{extract_tiles, extract_tiles_with_exports};
use crate::Result;

/// Options controlling the whole compilation pipeline.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CompilerOptions {
    /// Options passed to the flattening step.
    pub flatten: FlattenOptions,
    /// Options passed to the scheduler.
    pub schedule: ScheduleOptions,
    /// Maximum tile depth; `None` uses the full tree depth of the target.
    pub max_tile_depth: Option<usize>,
}

/// The cacheable result of compiling one SPN: the handle an execution engine
/// holds on to for the execute-many half of compile-once / execute-many.
///
/// Besides the executable program and the compile statistics, the artifact
/// carries the pre-resolved [`InputRecipe`], so materialising input vectors
/// for fresh evidence (single queries or whole [`EvidenceBatch`]es) costs a
/// template copy plus one store per indicator slot — no per-query matching
/// or allocation, and the per-variable [`ConeAnalysis`] (reachability of
/// every indicator leaf), so session runtimes can re-evaluate evidence
/// deltas incrementally without re-deriving reachability at query time.
#[derive(Debug, Clone)]
pub struct CompiledArtifact {
    /// The executable VLIW program.
    pub program: Program,
    /// Statistics about the compilation.
    pub report: CompileReport,
    /// The flattened operation list the program was compiled from.
    pub op_list: OpList,
    /// Pre-resolved mapping from evidence to the program's input vector.
    recipe: InputRecipe,
    /// Per-variable reachability cones, precomputed at compile time.
    cones: ConeAnalysis,
}

impl CompiledArtifact {
    /// Materialises the program's input vector for `evidence`.
    ///
    /// # Errors
    ///
    /// Returns an error when the evidence covers a different number of
    /// variables than the SPN the program was compiled from.
    pub fn input_values(&self, evidence: &Evidence) -> Result<Vec<f64>> {
        let mut out = Vec::new();
        self.recipe.fill_evidence(evidence, &mut out)?;
        Ok(out)
    }

    /// The pre-resolved evidence-to-input-vector mapping.
    pub fn input_recipe(&self) -> &InputRecipe {
        &self.recipe
    }

    /// The per-variable reachability cones of the compiled program (which
    /// ops each evidence variable's indicator leaves can affect), computed
    /// once at compile time for incremental session evaluation.
    pub fn cone_analysis(&self) -> &ConeAnalysis {
        &self.cones
    }

    /// The emulated PE arithmetic format the program computes in (recorded
    /// from the source [`OpList`]; the VLIW [`Program::pe_precision`] carries
    /// the simulator-side mirror of the same value).
    pub fn precision(&self) -> spn_core::precision::Precision {
        self.op_list.precision()
    }

    /// Fills `out` with the concatenated input vectors of every query in
    /// `batch` (query-major, ready for `Processor::run_batch`), reusing the
    /// allocation.
    ///
    /// # Errors
    ///
    /// Returns an error when the batch covers a different number of
    /// variables than the SPN the program was compiled from.
    pub fn fill_batch_inputs(&self, batch: &EvidenceBatch, out: &mut Vec<f64>) -> Result<()> {
        Ok(self.recipe.fill_batch(batch, out)?)
    }
}

/// The cacheable result of partitioning one program across pipeline stages:
/// a [`PartitionedProgram`] ready for
/// `spn_processor::MultiCoreProcessor::run_partitioned`, plus the recipe
/// filling the *global* (unpartitioned) input vector — stage-to-stage
/// operands travel over the modelled interconnect, not through evidence.
#[derive(Debug, Clone)]
pub struct PartitionedArtifact {
    /// The compiled pipeline stages (stage `j` runs on core `j`).
    pub parts: PartitionedProgram,
    /// One compile report per stage, in stage order.
    pub reports: Vec<CompileReport>,
    /// The unpartitioned operation list the stages were cut from.
    pub op_list: OpList,
    /// Pre-resolved mapping from evidence to the global input vector.
    recipe: InputRecipe,
}

impl PartitionedArtifact {
    /// Number of pipeline stages (≤ the core count requested).
    pub fn num_stages(&self) -> usize {
        self.parts.stages.len()
    }

    /// Materialises the global input vector for `evidence`.
    ///
    /// # Errors
    ///
    /// Returns an error when the evidence covers a different number of
    /// variables than the SPN the program was compiled from.
    pub fn input_values(&self, evidence: &Evidence) -> Result<Vec<f64>> {
        let mut out = Vec::new();
        self.recipe.fill_evidence(evidence, &mut out)?;
        Ok(out)
    }

    /// Fills `out` with the concatenated global input vectors of every
    /// query in `batch` (query-major, ready for `run_partitioned`).
    ///
    /// # Errors
    ///
    /// Returns an error when the batch covers a different number of
    /// variables than the SPN the program was compiled from.
    pub fn fill_batch_inputs(&self, batch: &EvidenceBatch, out: &mut Vec<f64>) -> Result<()> {
        Ok(self.recipe.fill_batch(batch, out)?)
    }

    /// The pre-resolved evidence-to-global-input-vector mapping.
    pub fn input_recipe(&self) -> &InputRecipe {
        &self.recipe
    }
}

/// Compiler from SPNs to processor programs.
///
/// See the crate-level documentation for an end-to-end example.
#[derive(Debug, Clone)]
pub struct Compiler {
    config: ProcessorConfig,
    options: CompilerOptions,
}

impl Compiler {
    /// Creates a compiler targeting `config` with default options.
    pub fn new(config: ProcessorConfig) -> Self {
        Compiler {
            config,
            options: CompilerOptions::default(),
        }
    }

    /// Creates a compiler with explicit options.
    pub fn with_options(config: ProcessorConfig, options: CompilerOptions) -> Self {
        Compiler { config, options }
    }

    /// The processor configuration this compiler targets.
    pub fn config(&self) -> &ProcessorConfig {
        &self.config
    }

    /// Compiles an SPN into a cacheable executable artifact.
    ///
    /// # Errors
    ///
    /// Returns a [`crate::CompileError`] when the target configuration is
    /// invalid or the program cannot be made to fit it.
    pub fn compile(&self, spn: &Spn) -> Result<CompiledArtifact> {
        let op_list = OpList::from_spn_with(spn, self.options.flatten);
        self.compile_op_list(op_list)
    }

    /// Compiles an already-flattened operation list.
    ///
    /// # Errors
    ///
    /// Returns a [`crate::CompileError`] when the target configuration is
    /// invalid or the program cannot be made to fit it.
    pub fn compile_op_list(&self, op_list: OpList) -> Result<CompiledArtifact> {
        let tiles = extract_tiles(&op_list, self.tile_depth());
        let (program, report) = schedule(&self.config, &op_list, &tiles, &self.options.schedule)?;
        let recipe = op_list.input_recipe();
        let cones = ConeAnalysis::from_op_list(&op_list);
        Ok(CompiledArtifact {
            program,
            report,
            op_list,
            recipe,
            cones,
        })
    }

    /// Partitions an already-flattened operation list into at most `cores`
    /// pipeline stages ([`OpList::partition`]) and compiles each stage for
    /// this compiler's core configuration, wiring the stages' imports to
    /// their producers' exported locations.
    ///
    /// The result executes on an N-core machine via
    /// `spn_processor::MultiCoreProcessor::run_partitioned` and computes
    /// bit-for-bit what the unpartitioned program computes.
    ///
    /// # Errors
    ///
    /// Returns a [`crate::CompileError`] when the target configuration is
    /// invalid or any stage cannot be made to fit it.
    pub fn compile_partitioned(
        &self,
        op_list: OpList,
        cores: usize,
    ) -> Result<PartitionedArtifact> {
        let parts = op_list.partition(cores);
        let mut stages = Vec::with_capacity(parts.len());
        let mut reports = Vec::with_capacity(parts.len());
        for part in &parts {
            let exports: Vec<OperandRef> =
                part.exports.iter().map(|&i| OperandRef::Op(i)).collect();
            let tiles = extract_tiles_with_exports(&part.ops, self.tile_depth(), &exports);
            let (program, report) = schedule_with_exports(
                &self.config,
                &part.ops,
                &tiles,
                &self.options.schedule,
                &exports,
            )?;
            let inputs = part
                .inputs
                .iter()
                .map(|src| match *src {
                    PartInput::Global(i) => TransferSource::Input(i),
                    PartInput::Link { part, export } => TransferSource::Core { core: part, export },
                })
                .collect();
            stages.push(CoreProgram { program, inputs });
            reports.push(report);
        }
        let recipe = op_list.input_recipe();
        let num_inputs = op_list.num_inputs();
        Ok(PartitionedArtifact {
            parts: PartitionedProgram { stages, num_inputs },
            reports,
            op_list,
            recipe,
        })
    }

    fn tile_depth(&self) -> usize {
        self.options
            .max_tile_depth
            .unwrap_or(self.config.tree_levels)
            .min(self.config.tree_levels)
            .max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use spn_core::random::{random_spn, RandomSpnConfig};
    use spn_processor::Processor;

    #[test]
    fn compile_and_execute_round_trip() {
        let mut rng = StdRng::seed_from_u64(5);
        let spn = random_spn(&RandomSpnConfig::with_vars(14), &mut rng);
        let compiler = Compiler::new(ProcessorConfig::ptree());
        let compiled = compiler.compile(&spn).unwrap();
        assert_eq!(compiled.report.source_ops, compiled.op_list.num_ops());

        let evidence = Evidence::marginal(14);
        let inputs = compiled.input_values(&evidence).unwrap();
        let processor = Processor::new(ProcessorConfig::ptree()).unwrap();
        let run = processor.run(&compiled.program, &inputs).unwrap();
        let expected = spn.evaluate(&evidence).unwrap();
        assert!((run.output - expected).abs() < 1e-9 * expected.abs().max(1.0));
    }

    #[test]
    fn max_tile_depth_caps_packing() {
        let mut rng = StdRng::seed_from_u64(6);
        let spn = random_spn(&RandomSpnConfig::with_vars(16), &mut rng);
        let deep = Compiler::new(ProcessorConfig::ptree())
            .compile(&spn)
            .unwrap();
        let shallow = Compiler::with_options(
            ProcessorConfig::ptree(),
            CompilerOptions {
                max_tile_depth: Some(1),
                ..Default::default()
            },
        )
        .compile(&spn)
        .unwrap();
        assert!(shallow.report.tiles >= deep.report.tiles);
        assert_eq!(shallow.report.tiles, shallow.op_list.num_ops());
    }

    #[test]
    fn evidence_mismatch_is_reported() {
        let mut rng = StdRng::seed_from_u64(7);
        let spn = random_spn(&RandomSpnConfig::with_vars(4), &mut rng);
        let compiled = Compiler::new(ProcessorConfig::pvect())
            .compile(&spn)
            .unwrap();
        assert!(compiled.input_values(&Evidence::marginal(9)).is_err());
    }

    #[test]
    fn config_accessor_returns_target() {
        let compiler = Compiler::new(ProcessorConfig::pvect());
        assert_eq!(compiler.config().name, "Pvect");
    }

    #[test]
    fn artifact_records_the_program_precision() {
        let mut rng = StdRng::seed_from_u64(8);
        let spn = random_spn(&RandomSpnConfig::with_vars(6), &mut rng);
        let p = spn_core::precision::Precision::E8M10;
        let ops = OpList::from_spn(&spn).with_precision(p);
        let compiled = Compiler::new(ProcessorConfig::ptree())
            .compile_op_list(ops)
            .unwrap();
        assert_eq!(compiled.precision(), p);
        assert_eq!(
            compiled.program.pe_precision,
            spn_processor::precision::Precision::Custom {
                exp_bits: 8,
                mant_bits: 10
            }
        );
    }

    #[test]
    fn artifact_carries_reachability_cones() {
        let mut rng = StdRng::seed_from_u64(9);
        let spn = random_spn(&RandomSpnConfig::with_vars(8), &mut rng);
        let compiled = Compiler::new(ProcessorConfig::ptree())
            .compile(&spn)
            .unwrap();
        let cones = compiled.cone_analysis();
        assert_eq!(cones.num_vars(), 8);
        assert_eq!(cones.num_ops(), compiled.op_list.num_ops());
        assert_eq!(cones, &ConeAnalysis::from_op_list(&compiled.op_list));
        // Every variable of a complete SPN reaches at least one op.
        for var in 0..8 {
            assert!(cones.cone_size(var) > 0, "variable {var} reaches nothing");
        }
    }

    #[test]
    fn partitioned_pipeline_matches_single_core_bit_for_bit() {
        use spn_processor::{MultiCoreConfig, MultiCoreProcessor, Processor};

        let mut rng = StdRng::seed_from_u64(21);
        let spn = random_spn(&RandomSpnConfig::with_vars(12), &mut rng);
        let compiler = Compiler::new(ProcessorConfig::ptree());
        let single = compiler.compile(&spn).unwrap();
        let processor = Processor::new(ProcessorConfig::ptree()).unwrap();

        for ops in [
            single.op_list.clone(),
            single.op_list.to_log_domain(),
            single
                .op_list
                .with_precision(spn_core::precision::Precision::E8M10),
        ] {
            let baseline = compiler.compile_op_list(ops.clone()).unwrap();
            for cores in [2usize, 3] {
                let parted = compiler.compile_partitioned(ops.clone(), cores).unwrap();
                assert!(parted.num_stages() >= 2);
                assert_eq!(parted.reports.len(), parted.num_stages());
                let mc =
                    MultiCoreProcessor::new(MultiCoreConfig::new(cores, ProcessorConfig::ptree()))
                        .unwrap();
                let mut states = Vec::new();
                let mut flat = Vec::new();
                let mut expected = Vec::new();
                for assignment in [[false; 12], [true; 12]] {
                    let e = Evidence::from_assignment(&assignment);
                    flat.extend(parted.input_values(&e).unwrap());
                    let inputs = baseline.input_values(&e).unwrap();
                    let mut state = processor.state_for(&baseline.program);
                    expected.push(
                        processor
                            .run_with(&baseline.program, &inputs, &mut state)
                            .unwrap()
                            .output,
                    );
                }
                let batch = mc
                    .run_partitioned(&parted.parts, &flat, 2, &mut states)
                    .unwrap();
                let got: Vec<f64> = batch.outputs.clone();
                assert_eq!(got.len(), expected.len());
                for (g, e) in got.iter().zip(&expected) {
                    assert_eq!(g.to_bits(), e.to_bits(), "cores={cores}");
                }
                batch.cores.check_accounting().unwrap();
            }
        }
    }

    /// The `spn_core` and `spn_processor` quantizers are independent
    /// implementations (the crates share no dependency); the simulator only
    /// agrees with the interpreted reduced-precision oracle if they round
    /// identically.  Pin them against each other bit for bit across formats,
    /// magnitudes, signs, ties and the non-finite encodings.
    #[test]
    fn core_and_processor_quantizers_agree_bit_for_bit() {
        let formats = [
            (11u8, 52u8),
            (8, 23),
            (8, 10),
            (5, 2),
            (2, 1),
            (4, 30),
            (11, 1),
        ];
        let mut probes: Vec<f64> = vec![
            0.0,
            -0.0,
            1.0,
            -1.0,
            1.125,
            1.375,
            0.1,
            f64::MIN_POSITIVE,
            f64::MAX,
            -f64::MAX,
            f64::INFINITY,
            f64::NEG_INFINITY,
        ];
        for e in -320..=308 {
            probes.push(1.7 * (10.0f64).powi(e));
            probes.push(-2.3 * (10.0f64).powi(e));
        }
        for (exp_bits, mant_bits) in formats {
            let core = spn_core::precision::Precision::Custom {
                exp_bits,
                mant_bits,
            };
            let sim = spn_processor::precision::Precision::Custom {
                exp_bits,
                mant_bits,
            };
            for &x in &probes {
                let a = spn_core::precision::round_to(core, x);
                let b = spn_processor::precision::round_to(sim, x);
                assert_eq!(a.to_bits(), b.to_bits(), "e{exp_bits}m{mant_bits} x={x:e}");
            }
        }
        for &x in &probes {
            assert_eq!(
                spn_core::precision::round_to(spn_core::precision::Precision::F32, x).to_bits(),
                spn_processor::precision::round_to(spn_processor::precision::Precision::F32, x)
                    .to_bits()
            );
        }
    }
}
