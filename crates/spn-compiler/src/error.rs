use std::fmt;

use spn_core::SpnError;
use spn_processor::ProcessorError;

/// Errors produced while compiling an SPN for the custom processor.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CompileError {
    /// The register file and spill memory together cannot hold the live set.
    ResourceExhausted {
        /// Human readable description of what ran out.
        reason: String,
    },
    /// The scheduler could not place an operation within its search window.
    Unschedulable {
        /// Operation index in the flattened program.
        op: usize,
        /// Human readable description.
        reason: String,
    },
    /// The processor configuration is unsuitable (e.g. fails validation).
    InvalidTarget {
        /// Human readable description.
        reason: String,
    },
    /// An error bubbled up from `spn-core` while flattening or evaluating.
    Spn(SpnError),
    /// An error bubbled up from the processor model.
    Processor(ProcessorError),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::ResourceExhausted { reason } => {
                write!(f, "out of processor resources: {reason}")
            }
            CompileError::Unschedulable { op, reason } => {
                write!(f, "operation {op} could not be scheduled: {reason}")
            }
            CompileError::InvalidTarget { reason } => {
                write!(f, "invalid target configuration: {reason}")
            }
            CompileError::Spn(e) => write!(f, "sum-product network error: {e}"),
            CompileError::Processor(e) => write!(f, "processor model error: {e}"),
        }
    }
}

impl std::error::Error for CompileError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CompileError::Spn(e) => Some(e),
            CompileError::Processor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SpnError> for CompileError {
    fn from(e: SpnError) -> Self {
        CompileError::Spn(e)
    }
}

impl From<ProcessorError> for CompileError {
    fn from(e: ProcessorError) -> Self {
        CompileError::Processor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = CompileError::ResourceExhausted {
            reason: "no free register offsets".into(),
        };
        assert!(e.to_string().contains("resources"));
        let e = CompileError::from(SpnError::EmptyNode);
        assert!(std::error::Error::source(&e).is_some());
        let e = CompileError::from(ProcessorError::InvalidConfig { reason: "x".into() });
        assert!(e.to_string().contains("processor"));
    }
}
