//! Cycle-by-cycle list scheduling of tiles onto the processor datapath.
//!
//! The scheduler walks the tiles in topological order and, for each tile,
//! finds the earliest cycle at which it can issue on one of the PE trees.
//! A placement has to satisfy every structural rule of the architecture:
//!
//! * its leaf-PE footprint must be free on the chosen tree in that cycle,
//! * every register operand must be readable (its producing write committed
//!   in an earlier cycle) and its bank must not be read by anyone else that
//!   cycle (the crossbar serves one read per bank per cycle),
//! * the root's write-back needs a destination bank that the root PE can
//!   reach, whose write port is free in the commit cycle, and that has a
//!   register lane the allocator can hand out safely.
//!
//! Program inputs live in the data memory and are loaded row by row before
//! first use; when two operands of one tile live in the same bank, the
//! scheduler inserts a forwarding *move* (a pass-through PE writing a copy to
//! a different bank); when the register file runs out, resident rows are
//! dropped or scalar offsets are spilled back to the data memory.

use std::collections::HashMap;

use spn_core::flatten::{LeafSource, OpList, OperandRef};
use spn_processor::config::{PePosition, ProcessorConfig};
use spn_processor::isa::{
    InputSlot, Instruction, MemOp, PeOp, Program, ReadSel, TreeInstr, ValueLocation, WriteCmd,
};

use crate::alloc::{Loc, RegAllocator, ValueMap};
use crate::error::CompileError;
use crate::report::CompileReport;
use crate::tile::Tile;
use crate::Result;

/// Maps a program's `spn_core` precision onto the simulator's mirrored
/// `spn_processor` type (the two crates share no dependency; their
/// quantizers are pinned bit-for-bit by this crate's tests).
pub(crate) fn pe_precision(
    precision: spn_core::precision::Precision,
) -> spn_processor::precision::Precision {
    match precision {
        spn_core::precision::Precision::F64 => spn_processor::precision::Precision::F64,
        spn_core::precision::Precision::F32 => spn_processor::precision::Precision::F32,
        spn_core::precision::Precision::Custom {
            exp_bits,
            mant_bits,
        } => spn_processor::precision::Precision::Custom {
            exp_bits,
            mant_bits,
        },
    }
}

/// Tunable knobs of the scheduler.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduleOptions {
    /// How many cycles past the operands' ready time to search for a dense
    /// placement before simply appending a new cycle to the schedule.
    pub search_window: u64,
}

impl Default for ScheduleOptions {
    fn default() -> Self {
        ScheduleOptions { search_window: 48 }
    }
}

/// Per-cycle resource bookings.
#[derive(Debug, Clone, Default)]
struct CycleInfo {
    /// Bitmask of banks read this cycle (crossbar + store traffic).
    read_banks: u64,
    /// Bitmask of banks with a write committing this cycle.
    write_banks: u64,
    /// Bitmask of occupied leaf PEs, one entry per tree.
    leaf_used: Vec<u16>,
    /// Whether the single data-memory port is taken.
    mem_used: bool,
}

/// How one leaf slot of a tile gets its value.
#[derive(Debug, Clone, Copy)]
enum SlotSource {
    /// Constant zero from the crossbar.
    Zero(OperandRef),
    /// Constant one from the crossbar.
    One(OperandRef),
    /// Read the operand from its canonical register location.
    Original {
        operand: OperandRef,
        bank: usize,
        reg: usize,
    },
    /// Read a temporary copy created by a forwarding move.
    Copy {
        bank: usize,
        reg: usize,
        /// Cycle at which the copy commits (readable afterwards).
        ready: u64,
    },
}

impl SlotSource {
    fn bank(&self) -> Option<usize> {
        match self {
            SlotSource::Original { bank, .. } | SlotSource::Copy { bank, .. } => Some(*bank),
            _ => None,
        }
    }

    fn ready_cycle(&self, values: &ValueMap) -> u64 {
        match self {
            SlotSource::Original { operand, .. } => match values.loc(*operand) {
                Loc::Reg { ready, .. } => ready + 1,
                _ => 0,
            },
            SlotSource::Copy { ready, .. } => ready + 1,
            _ => 0,
        }
    }
}

/// A chosen placement for one tile.
#[derive(Debug, Clone, Copy)]
struct Placement {
    cycle: u64,
    tree: usize,
    block: usize,
    dest_bank: usize,
    dest_reg: usize,
}

/// Schedules `tiles` (extracted from `ops`) onto `config`, producing the VLIW
/// program and a compilation report.
///
/// # Errors
///
/// Returns [`CompileError`] when the configuration is invalid or the working
/// set cannot be made to fit the register file and data memory.
pub fn schedule(
    config: &ProcessorConfig,
    ops: &OpList,
    tiles: &[Tile],
    options: &ScheduleOptions,
) -> Result<(Program, CompileReport)> {
    schedule_with_exports(config, ops, tiles, options, &[])
}

/// [`schedule`] with additional export obligations: every operand in
/// `exports` is kept live to the end of the program and its final location
/// is recorded in [`Program::exports`] (same order), so a runtime can peek
/// the values after execution — the compiler-side half of pipelined
/// multi-core execution, where a stage's exports feed later cores.
///
/// # Errors
///
/// Returns [`CompileError`] under the same conditions as [`schedule`], or
/// when an exported value cannot be materialised.
pub fn schedule_with_exports(
    config: &ProcessorConfig,
    ops: &OpList,
    tiles: &[Tile],
    options: &ScheduleOptions,
    exports: &[OperandRef],
) -> Result<(Program, CompileReport)> {
    config.validate()?;
    let mut scheduler = Scheduler::new(config, ops, options, exports);
    scheduler.init_values(tiles);
    for tile in tiles {
        scheduler.schedule_tile(tile)?;
    }
    scheduler.finish(tiles)
}

struct Scheduler<'a> {
    config: &'a ProcessorConfig,
    ops: &'a OpList,
    options: &'a ScheduleOptions,
    /// Operands whose final locations the program must expose (see
    /// [`schedule_with_exports`]).
    exports: &'a [OperandRef],
    values: ValueMap,
    alloc: RegAllocator,
    cycles: Vec<CycleInfo>,
    instructions: Vec<Instruction>,
    /// For every data-memory row: the values stored there and their lanes.
    mem_rows: Vec<Vec<(OperandRef, usize)>>,
    /// Earliest cycle at which each data-memory row holds valid data
    /// (0 for input rows, the store cycle + 1 for spill rows).
    row_available_from: Vec<u64>,
    /// Latest commit cycle booked so far (pipeline drain horizon).
    last_commit_booked: u64,
    /// Data-memory rows currently resident in the register file.
    resident: HashMap<usize, usize>,
    /// Reverse map of scalar allocations, for spilling.
    scalar_values: HashMap<(usize, usize), OperandRef>,
    /// How many values have been written to each bank (allocation heuristic).
    bank_pressure: Vec<u64>,
    input_slots: Vec<InputSlot>,
    /// Scan hint for finding a free data-memory cycle.
    mem_hint: u64,
    report: CompileReport,
}

impl<'a> Scheduler<'a> {
    fn new(
        config: &'a ProcessorConfig,
        ops: &'a OpList,
        options: &'a ScheduleOptions,
        exports: &'a [OperandRef],
    ) -> Self {
        Scheduler {
            config,
            ops,
            options,
            exports,
            values: ValueMap::new(ops.num_inputs(), ops.num_ops()),
            alloc: RegAllocator::new(config.regs_per_bank, config.total_banks()),
            cycles: Vec::new(),
            instructions: Vec::new(),
            mem_rows: Vec::new(),
            row_available_from: Vec::new(),
            last_commit_booked: 0,
            resident: HashMap::new(),
            scalar_values: HashMap::new(),
            bank_pressure: vec![0; config.total_banks()],
            input_slots: Vec::new(),
            mem_hint: 0,
            report: CompileReport::default(),
        }
    }

    fn init_values(&mut self, tiles: &[Tile]) {
        for tile in tiles {
            for read in &tile.reads {
                self.values.add_uses(read.operand, 1);
            }
        }
        self.values.add_uses(self.ops.output(), 1);
        // Exported values get a phantom use each so the scheduler never
        // frees their storage; `finish` resolves where they ended up.
        for &export in self.exports {
            self.values.add_uses(export, 1);
        }

        // Lay out every program input in the data memory, row major.
        let banks = self.config.total_banks();
        for (i, leaf) in self.ops.inputs().iter().enumerate() {
            let row = i / banks;
            let lane = i % banks;
            if lane == 0 {
                self.mem_rows.push(Vec::new());
                self.row_available_from.push(0);
            }
            let operand = OperandRef::Input(i as u32);
            self.mem_rows[row].push((operand, lane));
            self.input_slots.push(InputSlot {
                row: row as u32,
                lane: lane as u16,
            });
            let loc = match leaf {
                LeafSource::Param(p) if *p == 0.0 => Loc::ConstZero,
                LeafSource::Param(p) if *p == 1.0 => Loc::ConstOne,
                _ => Loc::Mem { row, lane },
            };
            self.values.set_loc(operand, loc);
        }
        self.report.source_ops = self.ops.num_ops();
        self.report.tiles = tiles.len();
    }

    fn ensure_cycle(&mut self, cycle: u64) {
        while self.cycles.len() <= cycle as usize {
            self.cycles.push(CycleInfo {
                leaf_used: vec![0; self.config.num_trees],
                ..Default::default()
            });
            self.instructions.push(Instruction::nop(self.config));
        }
    }

    fn fresh_cycle(&self) -> u64 {
        self.cycles.len() as u64
    }

    /// Offsets that currently hold operands of `tile` (must not be evicted).
    fn protected_offsets(&self, tile: &Tile) -> Vec<usize> {
        let mut protected = Vec::new();
        for read in &tile.reads {
            if let Loc::Reg { reg, .. } = self.values.loc(read.operand) {
                protected.push(reg);
            }
        }
        protected.sort_unstable();
        protected.dedup();
        protected
    }

    // ------------------------------------------------------------------
    // Memory traffic
    // ------------------------------------------------------------------

    /// Finds a cycle no earlier than `not_before` with a free memory port and
    /// no committing writes, where a row load can be placed.  Starts scanning
    /// at `self.mem_hint`.
    fn find_load_cycle(&mut self, not_before: u64) -> u64 {
        let mut c = self.mem_hint.max(not_before);
        loop {
            if (c as usize) >= self.cycles.len() {
                return c;
            }
            let info = &self.cycles[c as usize];
            if !info.mem_used && info.write_banks == 0 {
                return c;
            }
            c += 1;
        }
    }

    /// Loads data-memory row `row` into the register file, spilling other
    /// offsets when necessary.  Updates the locations of the row's live
    /// values.
    fn ensure_loaded(&mut self, row: usize, protected: &[usize]) -> Result<()> {
        if self.resident.contains_key(&row) {
            return Ok(());
        }
        let live = self.mem_rows[row]
            .iter()
            .filter(|(v, _)| {
                self.values.uses(*v) > 0
                    && matches!(self.values.loc(*v), Loc::Mem { row: r, .. } if r == row)
            })
            .count();
        loop {
            let cycle = self.find_load_cycle(self.row_available_from[row]);
            if let Some(offset) = self.alloc.alloc_row(row, live, cycle) {
                self.book_load(row, offset, cycle);
                return Ok(());
            }
            // Every free offset may still have reads booked in the future;
            // loading later (once such an offset becomes reusable) avoids an
            // unnecessary spill.
            if let Some(reuse_at) = self.alloc.earliest_row_reuse() {
                let later = self.find_load_cycle(reuse_at.max(self.row_available_from[row]));
                if let Some(offset) = self.alloc.alloc_row(row, live, later) {
                    self.book_load(row, offset, later);
                    return Ok(());
                }
            }
            if !self.spill_something(protected) {
                return Err(CompileError::ResourceExhausted {
                    reason: format!(
                        "cannot load input row {row}: register file full and nothing left to spill"
                    ),
                });
            }
        }
    }

    /// Books a vector load of `row` into register offset `offset` at `cycle`
    /// and updates the locations of the row's live values.
    fn book_load(&mut self, row: usize, offset: usize, cycle: u64) {
        self.ensure_cycle(cycle);
        let info = &mut self.cycles[cycle as usize];
        info.mem_used = true;
        info.write_banks = bank_mask(self.config.total_banks());
        self.instructions[cycle as usize].mem = MemOp::Load {
            row: row as u32,
            reg: offset as u16,
        };
        self.mem_hint = cycle + 1;
        self.last_commit_booked = self.last_commit_booked.max(cycle);
        self.alloc.note_write_row(offset, cycle);
        self.report.memory_loads += 1;
        self.resident.insert(row, offset);
        let row_values = self.mem_rows[row].clone();
        for (value, lane) in row_values {
            if self.values.uses(value) > 0 {
                if let Loc::Mem { row: r, .. } = self.values.loc(value) {
                    if r == row {
                        self.values.set_loc(
                            value,
                            Loc::Reg {
                                bank: lane,
                                reg: offset,
                                ready: cycle,
                            },
                        );
                    }
                }
            }
        }
    }

    /// Frees one register offset, either by dropping a resident row (still
    /// backed by memory) or by storing a scalar offset to a fresh spill row.
    /// Returns `false` when nothing can be evicted.
    fn spill_something(&mut self, protected: &[usize]) -> bool {
        let Some((offset, is_row)) = self.alloc.pick_victim(protected) else {
            return false;
        };
        if is_row {
            let row = self.alloc.drop_row(offset).expect("victim was a row");
            self.resident.remove(&row);
            let row_values = self.mem_rows[row].clone();
            for (value, lane) in row_values {
                if let Loc::Reg { reg, .. } = self.values.loc(value) {
                    if reg == offset {
                        self.values.set_loc(value, Loc::Mem { row, lane });
                    }
                }
            }
            return true;
        }

        // Scalar spill: store the whole offset row to a new data-memory row.
        let lanes = self.alloc.scalar_lanes(offset);
        let mut stored: Vec<(OperandRef, usize)> = Vec::new();
        for bank in &lanes {
            if let Some(&value) = self.scalar_values.get(&(*bank, offset)) {
                stored.push((value, *bank));
            }
        }
        // Find a cycle with a free memory port and no register reads at all
        // (the store occupies every bank's read port), after every write
        // booked so far has committed so no lane of the offset is in flight.
        let mut cycle = self.fresh_cycle().max(self.last_commit_booked + 1);
        loop {
            if (cycle as usize) >= self.cycles.len() {
                break;
            }
            let info = &self.cycles[cycle as usize];
            if !info.mem_used && info.read_banks == 0 {
                break;
            }
            cycle += 1;
        }
        self.ensure_cycle(cycle);
        let spill_row = self.mem_rows.len();
        self.mem_rows.push(stored.clone());
        // The spilled data only exists in memory after the store has executed.
        self.row_available_from.push(cycle + 1);
        let info = &mut self.cycles[cycle as usize];
        info.mem_used = true;
        info.read_banks = bank_mask(self.config.total_banks());
        self.instructions[cycle as usize].mem = MemOp::Store {
            row: spill_row as u32,
            reg: offset as u16,
        };
        self.report.memory_stores += 1;
        for (value, bank) in stored {
            self.values.set_loc(
                value,
                Loc::Mem {
                    row: spill_row,
                    lane: bank,
                },
            );
            self.scalar_values.remove(&(bank, offset));
        }
        self.alloc.clear_scalar(offset, cycle);
        true
    }

    // ------------------------------------------------------------------
    // Forwarding moves (bank-conflict resolution)
    // ------------------------------------------------------------------

    /// Creates a register copy of `operand` in a bank outside `avoid_banks`,
    /// using a pass-through PE.  Returns the copy's location and commit cycle
    /// and consumes one use of the original.
    fn make_copy(
        &mut self,
        operand: OperandRef,
        avoid_banks: u64,
        protected: &[usize],
    ) -> Result<(usize, usize, u64)> {
        let Loc::Reg {
            bank: src_bank,
            reg: src_reg,
            ready,
        } = self.values.loc(operand)
        else {
            return Err(CompileError::ResourceExhausted {
                reason: "copy source is not register resident".to_string(),
            });
        };
        let leaf_count = self.config.leaf_pes_per_tree;
        let mut cycle = ready + 1;
        loop {
            // Beyond every existing booking the only possible blocker is the
            // register allocator; remember this before extending the schedule.
            let beyond_bookings = cycle as usize >= self.cycles.len();
            self.ensure_cycle(cycle);
            let feasible = {
                let info = &self.cycles[cycle as usize];
                info.read_banks & (1 << src_bank) == 0
            };
            if feasible {
                // Try every leaf PE; its two writable banks are candidates.
                for tree in 0..self.config.num_trees {
                    let leaf_used = self.cycles[cycle as usize].leaf_used[tree];
                    for leaf in 0..leaf_count {
                        if leaf_used & (1 << leaf) != 0 {
                            continue;
                        }
                        let position = PePosition {
                            tree,
                            level: 0,
                            index: leaf,
                        };
                        for bank in self.config.writable_banks(position) {
                            if avoid_banks & (1 << bank) != 0 {
                                continue;
                            }
                            if self.cycles[cycle as usize].write_banks & (1 << bank) != 0 {
                                continue;
                            }
                            let Some(slot) = self.alloc.alloc_scalar([bank], cycle) else {
                                continue;
                            };
                            self.last_commit_booked = self.last_commit_booked.max(cycle);
                            self.alloc.note_write(slot.reg, bank, cycle);
                            // Book the move.
                            let info = &mut self.cycles[cycle as usize];
                            info.read_banks |= 1 << src_bank;
                            info.write_banks |= 1 << bank;
                            info.leaf_used[tree] |= 1 << leaf;
                            let tree_instr = &mut self.instructions[cycle as usize].trees[tree];
                            tree_instr.reads[2 * leaf] = ReadSel::Reg {
                                bank: src_bank as u16,
                                reg: src_reg as u16,
                            };
                            let flat = TreeInstr::pe_flat_index(self.config, 0, leaf);
                            tree_instr.pe_ops[flat] = PeOp::PassA;
                            tree_instr.writes.push(WriteCmd {
                                level: 0,
                                pe: leaf as u8,
                                bank: bank as u16,
                                reg: slot.reg as u16,
                            });
                            self.alloc.note_read(src_reg, src_bank, cycle);
                            if self.values.consume_use(operand) {
                                self.release_storage(operand, src_bank, src_reg, cycle);
                            }
                            self.report.copy_moves += 1;
                            self.bank_pressure[bank] += 1;
                            return Ok((bank, slot.reg, cycle));
                        }
                    }
                }
            }
            if beyond_bookings {
                // Only the register allocator can be blocking out here; make
                // room and keep scanning forward (freed lanes become usable
                // once the schedule passes their last booked read).
                let mut protected = protected.to_vec();
                protected.push(src_reg);
                if !self.spill_something(&protected) {
                    return Err(CompileError::ResourceExhausted {
                        reason: "no register lane available for a forwarding copy".to_string(),
                    });
                }
            }
            cycle += 1;
        }
    }

    /// Frees the storage behind `operand` after its last read at `cycle`.
    fn release_storage(&mut self, _operand: OperandRef, bank: usize, reg: usize, cycle: u64) {
        self.alloc.value_dead(reg, bank, cycle);
        self.scalar_values.remove(&(bank, reg));
        if self.alloc.is_free(reg) {
            if let Some(row) = self
                .resident
                .iter()
                .find(|(_, &offset)| offset == reg)
                .map(|(&row, _)| row)
            {
                self.resident.remove(&row);
            }
        }
    }

    // ------------------------------------------------------------------
    // Tile scheduling
    // ------------------------------------------------------------------

    fn schedule_tile(&mut self, tile: &Tile) -> Result<()> {
        // 1. Bring every memory-resident operand into the register file,
        //    protecting rows already brought in for this tile from eviction.
        let mut protected = self.protected_offsets(tile);
        loop {
            let mut needed_rows: Vec<usize> = tile
                .reads
                .iter()
                .filter_map(|r| match self.values.loc(r.operand) {
                    Loc::Mem { row, .. } => Some(row),
                    _ => None,
                })
                .collect();
            needed_rows.sort_unstable();
            needed_rows.dedup();
            if needed_rows.is_empty() {
                break;
            }
            for row in needed_rows {
                self.ensure_loaded(row, &protected)?;
                if let Some(&offset) = self.resident.get(&row) {
                    protected.push(offset);
                }
            }
        }

        // 2. Resolve operand sources and fix intra-tile bank conflicts.
        let mut slot_sources: Vec<(usize, SlotSource)> = Vec::with_capacity(tile.reads.len());
        let mut used_banks: u64 = 0;
        let mut all_original_banks: u64 = 0;
        for read in &tile.reads {
            if let Loc::Reg { bank, .. } = self.values.loc(read.operand) {
                all_original_banks |= 1 << bank;
            }
        }
        for read in &tile.reads {
            let source = match self.values.loc(read.operand) {
                Loc::ConstZero => SlotSource::Zero(read.operand),
                Loc::ConstOne => SlotSource::One(read.operand),
                Loc::Reg { bank, reg, .. } => {
                    if used_banks & (1 << bank) != 0 {
                        // Conflict with an earlier operand of this tile: route
                        // a copy through a different bank.
                        let (copy_bank, copy_reg, copy_cycle) = self.make_copy(
                            read.operand,
                            all_original_banks | used_banks,
                            &protected,
                        )?;
                        used_banks |= 1 << copy_bank;
                        protected.push(copy_reg);
                        SlotSource::Copy {
                            bank: copy_bank,
                            reg: copy_reg,
                            ready: copy_cycle,
                        }
                    } else {
                        used_banks |= 1 << bank;
                        SlotSource::Original {
                            operand: read.operand,
                            bank,
                            reg,
                        }
                    }
                }
                Loc::Mem { .. } | Loc::Unready => {
                    return Err(CompileError::Unschedulable {
                        op: tile.root,
                        reason: "operand not resident when scheduling tile".to_string(),
                    })
                }
            };
            slot_sources.push((read.slot, source));
        }

        // 3. Earliest issue cycle: every register operand must have committed.
        let earliest = slot_sources
            .iter()
            .map(|(_, s)| s.ready_cycle(&self.values))
            .max()
            .unwrap_or(0);

        // 4. Find and commit a placement.
        let placement = self.find_placement(tile, &slot_sources, earliest, &protected)?;
        self.commit_placement(tile, &slot_sources, placement);
        Ok(())
    }

    fn find_placement(
        &mut self,
        tile: &Tile,
        slot_sources: &[(usize, SlotSource)],
        earliest: u64,
        protected: &[usize],
    ) -> Result<Placement> {
        let window_end = earliest + self.options.search_window;
        let mut cycle = earliest;
        while cycle <= window_end {
            if let Some(p) = self.try_place_at(cycle, tile, slot_sources) {
                return Ok(p);
            }
            cycle += 1;
        }
        // Dense placement failed: append at the end of the schedule, spilling
        // if the register file is the limiting factor.
        loop {
            let cycle = self.fresh_cycle().max(earliest);
            if let Some(p) = self.try_place_at(cycle, tile, slot_sources) {
                return Ok(p);
            }
            if !self.spill_something(protected) {
                return Err(CompileError::Unschedulable {
                    op: tile.root,
                    reason: "no destination register available even after spilling".to_string(),
                });
            }
        }
    }

    fn try_place_at(
        &mut self,
        cycle: u64,
        tile: &Tile,
        slot_sources: &[(usize, SlotSource)],
    ) -> Option<Placement> {
        self.ensure_cycle(cycle);
        let root_level = tile.depth - 1;
        let commit = cycle + self.config.commit_latency(root_level);
        self.ensure_cycle(commit);
        let footprint = tile.leaf_footprint();
        let blocks = self.config.leaf_pes_per_tree / footprint;
        let footprint_mask: u16 = (((1u32 << footprint) - 1) & 0xffff) as u16;

        // Reads must not clash with anything already booked this cycle.
        let info_reads = self.cycles[cycle as usize].read_banks;
        let mut needed_reads: u64 = 0;
        for (_, source) in slot_sources {
            if let Some(bank) = source.bank() {
                needed_reads |= 1 << bank;
            }
        }
        if needed_reads & info_reads != 0 {
            return None;
        }

        // Prefer the tree with more free leaf PEs this cycle.
        let mut tree_order: Vec<usize> = (0..self.config.num_trees).collect();
        tree_order.sort_by_key(|&t| self.cycles[cycle as usize].leaf_used[t].count_ones());

        for tree in tree_order {
            let leaf_used = self.cycles[cycle as usize].leaf_used[tree];
            for block in 0..blocks {
                let mask = footprint_mask << (block * footprint);
                if leaf_used & mask != 0 {
                    continue;
                }
                // Destination bank for the root's write-back.
                let position = PePosition {
                    tree,
                    level: root_level,
                    index: block,
                };
                let mut candidates: Vec<usize> = self.config.writable_banks(position).collect();
                candidates.sort_by_key(|&b| self.bank_pressure[b]);
                let write_banks = self.cycles[commit as usize].write_banks;
                for bank in candidates {
                    if write_banks & (1 << bank) != 0 {
                        continue;
                    }
                    // Allocation is keyed on the issue cycle so the lane's
                    // previous value is not even in flight while it is still
                    // being read (keeps the processor's hazard oracle happy).
                    if let Some(slot) = self.alloc.alloc_scalar([bank], cycle) {
                        return Some(Placement {
                            cycle,
                            tree,
                            block,
                            dest_bank: slot.bank,
                            dest_reg: slot.reg,
                        });
                    }
                }
            }
        }
        None
    }

    fn commit_placement(
        &mut self,
        tile: &Tile,
        slot_sources: &[(usize, SlotSource)],
        placement: Placement,
    ) {
        let Placement {
            cycle,
            tree,
            block,
            dest_bank,
            dest_reg,
        } = placement;
        let root_level = tile.depth - 1;
        let commit = cycle + self.config.commit_latency(root_level);
        let footprint = tile.leaf_footprint();
        let leaf_base = block * footprint;

        self.ensure_cycle(commit);
        // Book leaf occupancy and the destination write.
        {
            let footprint_mask: u16 = (((1u32 << footprint) - 1) & 0xffff) as u16;
            let info = &mut self.cycles[cycle as usize];
            info.leaf_used[tree] |= footprint_mask << leaf_base;
        }
        self.cycles[commit as usize].write_banks |= 1 << dest_bank;
        self.bank_pressure[dest_bank] += 1;
        self.last_commit_booked = self.last_commit_booked.max(commit);
        self.alloc.note_write(dest_reg, dest_bank, commit);

        // Emit reads.
        for (slot, source) in slot_sources {
            let global_slot = leaf_base * 2 + slot;
            let sel = match source {
                SlotSource::Zero(_) => ReadSel::Zero,
                SlotSource::One(_) => ReadSel::One,
                SlotSource::Original { bank, reg, .. } | SlotSource::Copy { bank, reg, .. } => {
                    self.cycles[cycle as usize].read_banks |= 1 << *bank;
                    ReadSel::Reg {
                        bank: *bank as u16,
                        reg: *reg as u16,
                    }
                }
            };
            self.instructions[cycle as usize].trees[tree].reads[global_slot] = sel;
        }

        // Emit PE opcodes for the tile's operations and pass-throughs.
        for placed in &tile.ops {
            let global_index = (leaf_base >> placed.level) + placed.pos;
            let flat = TreeInstr::pe_flat_index(self.config, placed.level, global_index);
            self.instructions[cycle as usize].trees[tree].pe_ops[flat] = match placed.kind {
                spn_core::flatten::OpKind::Add => PeOp::Add,
                spn_core::flatten::OpKind::Mul => PeOp::Mul,
                spn_core::flatten::OpKind::Max => PeOp::Max,
                spn_core::flatten::OpKind::LogAdd => PeOp::Lse,
                spn_core::flatten::OpKind::Sam => PeOp::Sam,
            };
        }
        for pass in &tile.passes {
            let global_index = (leaf_base >> pass.level) + pass.pos;
            let flat = TreeInstr::pe_flat_index(self.config, pass.level, global_index);
            self.instructions[cycle as usize].trees[tree].pe_ops[flat] = PeOp::PassA;
        }

        // Emit the root's write-back.
        self.instructions[cycle as usize].trees[tree]
            .writes
            .push(WriteCmd {
                level: root_level as u8,
                pe: block as u8,
                bank: dest_bank as u16,
                reg: dest_reg as u16,
            });

        // Record the result location.
        let result = OperandRef::Op(tile.root as u32);
        self.values.set_loc(
            result,
            Loc::Reg {
                bank: dest_bank,
                reg: dest_reg,
                ready: commit,
            },
        );
        self.scalar_values.insert((dest_bank, dest_reg), result);

        // Consume operand uses and free dead storage.
        for (_, source) in slot_sources {
            match source {
                SlotSource::Zero(operand) | SlotSource::One(operand) => {
                    self.values.consume_use(*operand);
                }
                SlotSource::Original { operand, bank, reg } => {
                    self.alloc.note_read(*reg, *bank, cycle);
                    if self.values.consume_use(*operand) {
                        self.release_storage(*operand, *bank, *reg, cycle);
                    }
                }
                SlotSource::Copy { bank, reg, .. } => {
                    // Temporary copies die immediately after their single read.
                    self.alloc.value_dead(*reg, *bank, cycle);
                }
            }
        }

        let live = self.alloc.num_offsets() - self.alloc.free_offsets();
        self.report.peak_live_offsets = self.report.peak_live_offsets.max(live);
    }

    /// Where `operand` lives after the program has run (for the output and
    /// export peeks).
    fn final_location(&self, operand: OperandRef, role: &str) -> Result<ValueLocation> {
        match operand {
            // Inputs always keep their copy in the data memory image.
            OperandRef::Input(i) => {
                let slot = self.input_slots[i as usize];
                Ok(ValueLocation::Memory {
                    row: slot.row,
                    lane: slot.lane,
                })
            }
            OperandRef::Op(i) => match self.values.loc(operand) {
                Loc::Reg { bank, reg, .. } => Ok(ValueLocation::Register {
                    bank: bank as u16,
                    reg: reg as u16,
                }),
                Loc::Mem { row, lane } => Ok(ValueLocation::Memory {
                    row: row as u32,
                    lane: lane as u16,
                }),
                Loc::Unready | Loc::ConstZero | Loc::ConstOne => Err(CompileError::Unschedulable {
                    op: i as usize,
                    reason: format!("{role} was never materialised"),
                }),
            },
        }
    }

    fn finish(mut self, _tiles: &[Tile]) -> Result<(Program, CompileReport)> {
        let output = self.final_location(self.ops.output(), "program output")?;
        let exports = self
            .exports
            .iter()
            .map(|&e| self.final_location(e, "exported value"))
            .collect::<Result<Vec<_>>>()?;

        self.report.instructions = self.instructions.len();
        self.report.estimated_cycles = self.instructions.len() as u64;
        self.report.nop_instructions = self.instructions.iter().filter(|i| i.is_nop()).count();

        let program = Program {
            config: self.config.clone(),
            instructions: self.instructions,
            input_layout: self.input_slots,
            memory_rows_used: self.mem_rows.len(),
            output,
            exports,
            num_source_ops: self.ops.num_ops(),
            pe_precision: pe_precision(self.ops.precision()),
        };
        Ok((program, self.report))
    }
}

fn bank_mask(banks: usize) -> u64 {
    if banks >= 64 {
        u64::MAX
    } else {
        (1u64 << banks) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tile::extract_tiles;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use spn_core::random::{random_spn, RandomSpnConfig};
    use spn_core::{Evidence, SpnBuilder, VarId};
    use spn_processor::Processor;

    fn compile_and_run(
        config: &ProcessorConfig,
        spn: &spn_core::Spn,
        evidence: &Evidence,
    ) -> (f64, f64, CompileReport) {
        let ops = OpList::from_spn(spn);
        let tiles = extract_tiles(&ops, config.tree_levels);
        let (program, report) =
            schedule(config, &ops, &tiles, &ScheduleOptions::default()).expect("schedule");
        let inputs = ops.input_values(evidence).expect("inputs");
        let processor = Processor::new(config.clone()).expect("processor");
        let run = processor.run(&program, &inputs).expect("run");
        let reference = spn.evaluate(evidence).expect("reference");
        (run.output, reference, report)
    }

    fn small_mixture() -> spn_core::Spn {
        let mut b = SpnBuilder::new(2);
        let x0 = b.indicator(VarId(0), true);
        let nx0 = b.indicator(VarId(0), false);
        let x1 = b.indicator(VarId(1), true);
        let nx1 = b.indicator(VarId(1), false);
        let p0 = b.product(vec![x0, x1]).unwrap();
        let p1 = b.product(vec![nx0, nx1]).unwrap();
        let root = b.sum(vec![(p0, 0.3), (p1, 0.7)]).unwrap();
        b.finish(root).unwrap()
    }

    #[test]
    fn small_mixture_runs_correctly_on_ptree() {
        let spn = small_mixture();
        for assignment in [[true, true], [true, false], [false, false]] {
            let (got, expected, _) = compile_and_run(
                &ProcessorConfig::ptree(),
                &spn,
                &Evidence::from_assignment(&assignment),
            );
            assert!((got - expected).abs() < 1e-12, "{assignment:?}");
        }
    }

    #[test]
    fn small_mixture_runs_correctly_on_pvect() {
        let spn = small_mixture();
        let (got, expected, _) =
            compile_and_run(&ProcessorConfig::pvect(), &spn, &Evidence::marginal(2));
        assert!((got - expected).abs() < 1e-12);
    }

    #[test]
    fn random_spns_run_correctly_on_both_configs() {
        let mut rng = StdRng::seed_from_u64(23);
        for trial in 0..4u64 {
            let spn = random_spn(&RandomSpnConfig::with_vars(10), &mut rng);
            let evidence = Evidence::marginal(10);
            for config in [ProcessorConfig::ptree(), ProcessorConfig::pvect()] {
                let (got, expected, report) = compile_and_run(&config, &spn, &evidence);
                assert!(
                    (got - expected).abs() < 1e-9 * expected.abs().max(1.0),
                    "trial {trial} on {}",
                    config.name
                );
                assert_eq!(report.source_ops, OpList::from_spn(&spn).num_ops());
            }
        }
    }

    #[test]
    fn ptree_packs_more_ops_per_instruction_than_pvect() {
        let mut rng = StdRng::seed_from_u64(29);
        let spn = random_spn(&RandomSpnConfig::with_vars(24), &mut rng);
        let evidence = Evidence::marginal(24);
        let (_, _, tree_report) = compile_and_run(&ProcessorConfig::ptree(), &spn, &evidence);
        let (_, _, vect_report) = compile_and_run(&ProcessorConfig::pvect(), &spn, &evidence);
        assert!(
            tree_report.ops_per_instruction() > vect_report.ops_per_instruction(),
            "tree: {:.2}, vect: {:.2}",
            tree_report.ops_per_instruction(),
            vect_report.ops_per_instruction()
        );
    }

    #[test]
    fn tiny_register_file_forces_extra_memory_traffic_but_stays_correct() {
        let mut config = ProcessorConfig::ptree();
        config.regs_per_bank = 6;
        config.name = "tiny".to_string();
        let mut rng = StdRng::seed_from_u64(31);
        let spn = random_spn(&RandomSpnConfig::with_vars(48), &mut rng);
        let evidence = Evidence::marginal(48);

        // Shallow tiles keep the per-tile operand footprint within the tiny
        // register file; the working set still does not fit as a whole.
        let ops = OpList::from_spn(&spn);
        let tiles = extract_tiles(&ops, 2);
        let (program, report) =
            schedule(&config, &ops, &tiles, &ScheduleOptions::default()).expect("schedule");
        let inputs = ops.input_values(&evidence).expect("inputs");
        let processor = Processor::new(config).expect("processor");
        let run = processor.run(&program, &inputs).expect("run");
        let expected = spn.evaluate(&evidence).expect("reference");

        assert!((run.output - expected).abs() < 1e-9 * expected.abs().max(1.0));
        let minimum_rows = ops.num_inputs().div_ceil(32);
        assert!(
            report.memory_loads >= minimum_rows,
            "input rows must still be loaded: {report}"
        );
        // With six registers per bank the working set does not fit: rows must
        // be re-loaded or intermediates spilled.
        assert!(
            report.memory_loads > minimum_rows || report.memory_stores > 0,
            "expected eviction traffic: {report}"
        );
    }

    #[test]
    fn single_leaf_program_needs_no_instructions() {
        let mut b = SpnBuilder::new(1);
        let x = b.indicator(VarId(0), true);
        let spn = b.finish(x).unwrap();
        let ops = OpList::from_spn(&spn);
        let tiles = extract_tiles(&ops, 4);
        assert!(tiles.is_empty());
        let config = ProcessorConfig::ptree();
        let (program, report) =
            schedule(&config, &ops, &tiles, &ScheduleOptions::default()).unwrap();
        assert!(program.is_empty());
        assert_eq!(report.source_ops, 0);
        let processor = Processor::new(config).unwrap();
        let run = processor
            .run(
                &program,
                &ops.input_values(&Evidence::from_assignment(&[true]))
                    .unwrap(),
            )
            .unwrap();
        assert_eq!(run.output, 1.0);
    }

    #[test]
    fn schedule_report_counts_are_consistent() {
        let mut rng = StdRng::seed_from_u64(37);
        let spn = random_spn(&RandomSpnConfig::with_vars(16), &mut rng);
        let ops = OpList::from_spn(&spn);
        let config = ProcessorConfig::ptree();
        let tiles = extract_tiles(&ops, config.tree_levels);
        let (program, report) =
            schedule(&config, &ops, &tiles, &ScheduleOptions::default()).unwrap();
        assert_eq!(report.tiles, tiles.len());
        assert_eq!(report.instructions, program.instructions.len());
        assert!(report.memory_loads >= ops.num_inputs().div_ceil(config.total_banks()) / 2);
        assert!(report.peak_live_offsets <= config.regs_per_bank);
        let issued: usize = program
            .instructions
            .iter()
            .map(Instruction::arithmetic_ops)
            .sum();
        assert_eq!(issued, ops.num_ops());
    }
}
