//! Compilation statistics.

use serde::{Deserialize, Serialize};

/// What the compiler did to one SPN, for inspection and benchmarking.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct CompileReport {
    /// Arithmetic operations in the flattened SPN (the work to schedule).
    pub source_ops: usize,
    /// Number of tiles (PE-tree passes) the operations were packed into.
    pub tiles: usize,
    /// Instructions in the emitted program (issue cycles).
    pub instructions: usize,
    /// Estimated total cycles including the final pipeline drain.
    pub estimated_cycles: u64,
    /// Vector loads of input or spilled rows.
    pub memory_loads: usize,
    /// Vector stores caused by register spilling.
    pub memory_stores: usize,
    /// Forwarding moves inserted to resolve register-bank read conflicts.
    pub copy_moves: usize,
    /// Completely idle instructions (could not be filled with work).
    pub nop_instructions: usize,
    /// Register offsets that were never free simultaneously (peak pressure
    /// proxy): the maximum number of offsets in use at any point.
    pub peak_live_offsets: usize,
}

impl CompileReport {
    /// Average arithmetic operations issued per instruction.
    pub fn ops_per_instruction(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.source_ops as f64 / self.instructions as f64
        }
    }

    /// Average operations per tile (how much the tree packing absorbed).
    pub fn ops_per_tile(&self) -> f64 {
        if self.tiles == 0 {
            0.0
        } else {
            self.source_ops as f64 / self.tiles as f64
        }
    }
}

impl std::fmt::Display for CompileReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} ops in {} tiles, {} instructions (~{} cycles), {} loads, {} stores, {} moves",
            self.source_ops,
            self.tiles,
            self.instructions,
            self.estimated_cycles,
            self.memory_loads,
            self.memory_stores,
            self.copy_moves,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn averages_handle_empty_reports() {
        let r = CompileReport::default();
        assert_eq!(r.ops_per_instruction(), 0.0);
        assert_eq!(r.ops_per_tile(), 0.0);
        assert!(!r.to_string().is_empty());
    }

    #[test]
    fn averages_divide() {
        let r = CompileReport {
            source_ops: 100,
            tiles: 25,
            instructions: 10,
            ..Default::default()
        };
        assert_eq!(r.ops_per_instruction(), 10.0);
        assert_eq!(r.ops_per_tile(), 4.0);
    }
}
