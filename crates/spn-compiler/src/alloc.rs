//! Register-file and data-memory allocation.
//!
//! The register file is addressed as `bank × offset`.  The allocator manages
//! the offsets of the whole file and distinguishes two uses:
//!
//! * **row offsets** hold one data-memory row after a vector load (the same
//!   offset in every bank), used for program inputs and reloaded spills;
//! * **scalar offsets** hold individual PE write-backs, one value per bank
//!   lane, so independent values can share an offset across banks.
//!
//! Because the schedule books reads at future cycles, a freed lane may only
//! be reused by a write that commits strictly after the last scheduled read
//! of the previous occupant (tracked per `(offset, bank)` lane), otherwise
//! the new value would clobber an operand that is still going to be read.

use spn_core::flatten::OperandRef;

/// State of one register offset across all banks.
#[derive(Debug, Clone, PartialEq)]
enum OffsetState {
    /// No live value uses this offset.
    Free,
    /// The offset holds a loaded data-memory row; `live` values are still
    /// going to be read.
    Row {
        /// Number of live values in the row.
        live: usize,
        /// Data-memory row currently resident at this offset.
        row: usize,
    },
    /// The offset holds scalar write-backs; one bit per occupied bank lane.
    Scalar {
        /// Occupancy bitmask (bit `b` = bank `b` holds a live value).
        occupied: u64,
    },
}

/// Allocation decision for a scalar write-back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScalarSlot {
    /// Destination bank.
    pub bank: usize,
    /// Destination register offset.
    pub reg: usize,
}

/// Register-offset allocator with lane-granular reuse-safety tracking.
#[derive(Debug, Clone)]
pub struct RegAllocator {
    states: Vec<OffsetState>,
    /// `lane_free_after[offset * banks + bank]`: the earliest commit cycle at
    /// which a new value may safely occupy this lane.
    lane_free_after: Vec<u64>,
    total_banks: usize,
}

impl RegAllocator {
    /// Creates an allocator for `regs_per_bank` offsets over `total_banks`
    /// banks.
    pub fn new(regs_per_bank: usize, total_banks: usize) -> Self {
        assert!(total_banks <= 64, "occupancy mask limited to 64 banks");
        RegAllocator {
            states: vec![OffsetState::Free; regs_per_bank],
            lane_free_after: vec![0; regs_per_bank * total_banks],
            total_banks,
        }
    }

    fn lane(&self, offset: usize, bank: usize) -> usize {
        offset * self.total_banks + bank
    }

    /// Number of offsets currently completely free.
    pub fn free_offsets(&self) -> usize {
        self.states
            .iter()
            .filter(|s| matches!(s, OffsetState::Free))
            .count()
    }

    /// Number of offsets in the register file.
    pub fn num_offsets(&self) -> usize {
        self.states.len()
    }

    /// Returns `true` when the offset holds no live values.
    pub fn is_free(&self, offset: usize) -> bool {
        matches!(self.states[offset], OffsetState::Free)
    }

    /// Records that a value at `(offset, bank)` is read at `cycle`, delaying
    /// any reuse of that lane until after the read.
    pub fn note_read(&mut self, offset: usize, bank: usize, cycle: u64) {
        let lane = self.lane(offset, bank);
        self.lane_free_after[lane] = self.lane_free_after[lane].max(cycle + 1);
    }

    /// Records that a write committing at `cycle` has been booked to
    /// `(offset, bank)`.  The lane may only be re-occupied by values whose
    /// writes are issued after that commit, so a booked-but-future write can
    /// never clobber a later tenant.
    pub fn note_write(&mut self, offset: usize, bank: usize, cycle: u64) {
        let lane = self.lane(offset, bank);
        self.lane_free_after[lane] = self.lane_free_after[lane].max(cycle + 1);
    }

    /// Row-wide variant of [`RegAllocator::note_write`] for vector loads.
    pub fn note_write_row(&mut self, offset: usize, cycle: u64) {
        for bank in 0..self.total_banks {
            self.note_write(offset, bank, cycle);
        }
    }

    fn offset_free_after(&self, offset: usize) -> u64 {
        (0..self.total_banks)
            .map(|b| self.lane_free_after[self.lane(offset, b)])
            .max()
            .unwrap_or(0)
    }

    /// Allocates an offset for a row load committing at `cycle`.
    ///
    /// Returns `None` when no offset can safely be reused at that cycle.
    pub fn alloc_row(&mut self, row: usize, live: usize, cycle: u64) -> Option<usize> {
        let idx = (0..self.states.len()).find(|&i| {
            matches!(self.states[i], OffsetState::Free) && self.offset_free_after(i) <= cycle
        })?;
        self.states[idx] = OffsetState::Row { live, row };
        Some(idx)
    }

    /// Earliest cycle at which some completely free offset can be re-occupied
    /// (useful when every free offset still has reads booked in the future).
    pub fn earliest_row_reuse(&self) -> Option<u64> {
        (0..self.states.len())
            .filter(|&i| matches!(self.states[i], OffsetState::Free))
            .map(|i| self.offset_free_after(i))
            .min()
    }

    /// Records that one value of the row at `offset` will never be read again;
    /// frees the offset when the row becomes empty.
    pub fn row_value_dead(&mut self, offset: usize) {
        if let OffsetState::Row { live, .. } = &mut self.states[offset] {
            *live = live.saturating_sub(1);
            if *live == 0 {
                self.states[offset] = OffsetState::Free;
            }
        }
    }

    /// Drops a resident row regardless of its live count (used when the row is
    /// still backed by memory and can simply be reloaded later).
    ///
    /// Returns the row that was resident, if the offset held one.
    pub fn drop_row(&mut self, offset: usize) -> Option<usize> {
        if let OffsetState::Row { row, .. } = self.states[offset] {
            self.states[offset] = OffsetState::Free;
            Some(row)
        } else {
            None
        }
    }

    /// Data-memory row resident at `offset`, if any.
    pub fn resident_row(&self, offset: usize) -> Option<usize> {
        match self.states[offset] {
            OffsetState::Row { row, .. } => Some(row),
            _ => None,
        }
    }

    /// Allocates a `(bank, offset)` slot for a scalar write-back committing at
    /// `cycle`.  Banks are tried in the order given by `candidate_banks`;
    /// partially used scalar offsets are preferred over opening fresh ones.
    pub fn alloc_scalar(
        &mut self,
        candidate_banks: impl IntoIterator<Item = usize>,
        cycle: u64,
    ) -> Option<ScalarSlot> {
        for bank in candidate_banks {
            debug_assert!(bank < self.total_banks);
            let lane_ok =
                |this: &Self, idx: usize| this.lane_free_after[this.lane(idx, bank)] <= cycle;
            let mut chosen: Option<usize> = None;
            let mut fallback_free: Option<usize> = None;
            for idx in 0..self.states.len() {
                match self.states[idx] {
                    OffsetState::Scalar { occupied }
                        if occupied & (1 << bank) == 0 && lane_ok(self, idx) =>
                    {
                        chosen = Some(idx);
                        break;
                    }
                    OffsetState::Free if fallback_free.is_none() && lane_ok(self, idx) => {
                        fallback_free = Some(idx);
                    }
                    _ => {}
                }
            }
            if let Some(idx) = chosen.or(fallback_free) {
                if matches!(self.states[idx], OffsetState::Free) {
                    self.states[idx] = OffsetState::Scalar { occupied: 0 };
                }
                if let OffsetState::Scalar { occupied } = &mut self.states[idx] {
                    *occupied |= 1 << bank;
                }
                return Some(ScalarSlot { bank, reg: idx });
            }
        }
        None
    }

    /// Records that the scalar at `(offset, bank)` will never be read again.
    pub fn scalar_dead(&mut self, offset: usize, bank: usize) {
        if let OffsetState::Scalar { occupied } = &mut self.states[offset] {
            *occupied &= !(1 << bank);
            if *occupied == 0 {
                self.states[offset] = OffsetState::Free;
            }
        }
    }

    /// Releases the value stored at `(offset, bank)` whichever kind of offset
    /// it belongs to, after its final read at `cycle`.
    pub fn value_dead(&mut self, offset: usize, bank: usize, cycle: u64) {
        self.note_read(offset, bank, cycle);
        match self.states[offset] {
            OffsetState::Row { .. } => self.row_value_dead(offset),
            OffsetState::Scalar { .. } => self.scalar_dead(offset, bank),
            OffsetState::Free => {}
        }
    }

    /// Picks a spill victim that is not in `protected`: prefers resident rows
    /// (free to drop because the backing memory still holds them), otherwise
    /// the scalar offset with the most occupied lanes.  Returns
    /// `(offset, is_row)`.
    pub fn pick_victim(&self, protected: &[usize]) -> Option<(usize, bool)> {
        let allowed = |i: &usize| !protected.contains(i);
        if let Some((idx, _)) = (0..self.states.len())
            .filter(allowed)
            .filter_map(|i| match self.states[i] {
                OffsetState::Row { live, .. } => Some((i, live)),
                _ => None,
            })
            .min_by_key(|&(_, live)| live)
        {
            return Some((idx, true));
        }
        (0..self.states.len())
            .filter(allowed)
            .filter_map(|i| match self.states[i] {
                OffsetState::Scalar { occupied } => Some((i, occupied.count_ones())),
                _ => None,
            })
            .max_by_key(|&(_, n)| n)
            .map(|(i, _)| (i, false))
    }

    /// Returns the bank lanes currently occupied in a scalar offset.
    pub fn scalar_lanes(&self, offset: usize) -> Vec<usize> {
        match self.states[offset] {
            OffsetState::Scalar { occupied } => (0..self.total_banks)
                .filter(|b| occupied & (1 << b) != 0)
                .collect(),
            _ => Vec::new(),
        }
    }

    /// Clears a scalar offset after it has been spilled to memory; its lanes
    /// may be reused by writes committing after `cycle` (the store cycle).
    pub fn clear_scalar(&mut self, offset: usize, cycle: u64) {
        for bank in 0..self.total_banks {
            self.note_read(offset, bank, cycle);
        }
        self.states[offset] = OffsetState::Free;
    }
}

/// Where a value currently lives, from the scheduler's point of view.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Loc {
    /// The value has not been computed yet.
    Unready,
    /// The value sits in data memory.
    Mem {
        /// Data-memory row.
        row: usize,
        /// Lane (bank column) within the row.
        lane: usize,
    },
    /// The value sits in the register file.
    Reg {
        /// Global bank index.
        bank: usize,
        /// Register offset.
        reg: usize,
        /// Cycle at which the value's write commits (readable afterwards).
        ready: u64,
    },
    /// The value is the constant zero (never stored anywhere).
    ConstZero,
    /// The value is the constant one (never stored anywhere).
    ConstOne,
}

/// Tracks the location and the remaining uses of every value of the program
/// (inputs and operation results).
#[derive(Debug, Clone)]
pub struct ValueMap {
    inputs: Vec<Loc>,
    ops: Vec<Loc>,
    input_uses: Vec<usize>,
    op_uses: Vec<usize>,
}

impl ValueMap {
    /// Creates a map for `num_inputs` inputs and `num_ops` operation results.
    pub fn new(num_inputs: usize, num_ops: usize) -> Self {
        ValueMap {
            inputs: vec![Loc::Unready; num_inputs],
            ops: vec![Loc::Unready; num_ops],
            input_uses: vec![0; num_inputs],
            op_uses: vec![0; num_ops],
        }
    }

    /// Current location of `value`.
    pub fn loc(&self, value: OperandRef) -> Loc {
        match value {
            OperandRef::Input(i) => self.inputs[i as usize],
            OperandRef::Op(i) => self.ops[i as usize],
        }
    }

    /// Updates the location of `value`.
    pub fn set_loc(&mut self, value: OperandRef, loc: Loc) {
        match value {
            OperandRef::Input(i) => self.inputs[i as usize] = loc,
            OperandRef::Op(i) => self.ops[i as usize] = loc,
        }
    }

    /// Remaining number of not-yet-scheduled uses of `value`.
    pub fn uses(&self, value: OperandRef) -> usize {
        match value {
            OperandRef::Input(i) => self.input_uses[i as usize],
            OperandRef::Op(i) => self.op_uses[i as usize],
        }
    }

    /// Adds `n` expected uses of `value`.
    pub fn add_uses(&mut self, value: OperandRef, n: usize) {
        match value {
            OperandRef::Input(i) => self.input_uses[i as usize] += n,
            OperandRef::Op(i) => self.op_uses[i as usize] += n,
        }
    }

    /// Consumes one use of `value`; returns `true` when it was the last one.
    pub fn consume_use(&mut self, value: OperandRef) -> bool {
        let uses = match value {
            OperandRef::Input(i) => &mut self.input_uses[i as usize],
            OperandRef::Op(i) => &mut self.op_uses[i as usize],
        };
        debug_assert!(*uses > 0, "value consumed more often than counted");
        *uses -= 1;
        *uses == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_allocation_and_release() {
        let mut a = RegAllocator::new(4, 32);
        let o = a.alloc_row(3, 2, 1).unwrap();
        assert_eq!(a.free_offsets(), 3);
        assert_eq!(a.resident_row(o), Some(3));
        a.note_read(o, 0, 5);
        a.row_value_dead(o);
        assert_eq!(a.free_offsets(), 3);
        a.note_read(o, 1, 9);
        a.row_value_dead(o);
        assert_eq!(a.free_offsets(), 4);
        // Reuse of that offset is only allowed after the last read (cycle 9);
        // other offsets remain usable.
        assert_ne!(a.alloc_row(7, 1, 8), Some(o));
        assert!(a.alloc_row(8, 1, 10).is_some());
    }

    #[test]
    fn scalar_slots_share_offsets_across_banks() {
        let mut a = RegAllocator::new(2, 32);
        let s0 = a.alloc_scalar([0], 1).unwrap();
        let s1 = a.alloc_scalar([1], 1).unwrap();
        // Both scalars fit the same offset because they sit in different banks.
        assert_eq!(s0.reg, s1.reg);
        let s2 = a.alloc_scalar([0], 1).unwrap();
        assert_ne!(s2.reg, s0.reg);
        // Bank 0 now has no free offsets left.
        assert!(a.alloc_scalar([0], 1).is_none());
        // Freeing lane 0 of the first offset makes room again, but only for
        // writes that commit after the last read of the old value.
        a.note_read(s0.reg, 0, 10);
        a.scalar_dead(s0.reg, 0);
        assert!(a.alloc_scalar([0], 5).is_none());
        let s3 = a.alloc_scalar([0], 11).unwrap();
        assert_eq!(s3.reg, s0.reg);
    }

    #[test]
    fn lane_reuse_respects_pending_reads() {
        let mut a = RegAllocator::new(1, 4);
        let s = a.alloc_scalar([2], 1).unwrap();
        a.value_dead(s.reg, 2, 50);
        // The lane is dead but was read at cycle 50: a write committing at 20
        // must not land there.
        assert!(a.alloc_scalar([2], 20).is_none());
        assert!(a.alloc_scalar([2], 51).is_some());
    }

    #[test]
    fn candidate_bank_order_is_respected() {
        let mut a = RegAllocator::new(1, 32);
        let s = a.alloc_scalar([5, 6], 1).unwrap();
        assert_eq!(s.bank, 5);
        // Lane 5 of the single offset is now taken, so the second candidate
        // bank gets used.
        let s = a.alloc_scalar([5, 6], 1).unwrap();
        assert_eq!(s.bank, 6);
        assert_eq!(s.reg, 0);
        // With both candidate lanes taken, allocation fails.
        assert!(a.alloc_scalar([5, 6], 1).is_none());
    }

    #[test]
    fn victim_prefers_rows_and_respects_protection() {
        let mut a = RegAllocator::new(3, 32);
        let s = a.alloc_scalar([0], 1).unwrap();
        let row_offset = a.alloc_row(9, 4, 1).unwrap();
        let (victim, is_row) = a.pick_victim(&[]).unwrap();
        assert_eq!(victim, row_offset);
        assert!(is_row);
        // Protecting the row forces the scalar to be chosen.
        let (victim, is_row) = a.pick_victim(&[row_offset]).unwrap();
        assert!(!is_row);
        assert_eq!(victim, s.reg);
        assert_eq!(a.drop_row(row_offset), Some(9));
        assert_eq!(a.scalar_lanes(s.reg), vec![0]);
        a.clear_scalar(s.reg, 5);
        assert_eq!(a.free_offsets(), 3);
        assert!(a.pick_victim(&[]).is_none());
    }

    #[test]
    fn value_map_tracks_uses_and_locations() {
        let mut vm = ValueMap::new(2, 2);
        let input = OperandRef::Input(0);
        let op = OperandRef::Op(1);
        vm.add_uses(input, 2);
        vm.add_uses(op, 1);
        assert_eq!(vm.uses(input), 2);
        assert!(!vm.consume_use(input));
        assert!(vm.consume_use(input));
        assert!(vm.consume_use(op));
        vm.set_loc(
            op,
            Loc::Reg {
                bank: 3,
                reg: 7,
                ready: 11,
            },
        );
        match vm.loc(op) {
            Loc::Reg { bank, reg, ready } => {
                assert_eq!((bank, reg, ready), (3, 7, 11));
            }
            other => panic!("unexpected location {other:?}"),
        }
        assert_eq!(vm.loc(input), Loc::Unready);
    }

    #[test]
    fn is_free_and_num_offsets() {
        let mut a = RegAllocator::new(2, 8);
        assert_eq!(a.num_offsets(), 2);
        assert!(a.is_free(0));
        let s = a.alloc_scalar([1], 1).unwrap();
        assert!(!a.is_free(s.reg));
    }
}
