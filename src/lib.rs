//! Umbrella crate for the SPN custom-processor reproduction.
//!
//! Re-exports the workspace crates under one roof so examples and downstream
//! users can depend on a single crate:
//!
//! * [`core`](spn_core) — SPN representation, inference, batched evidence,
//!   flattening.
//! * [`learn`](spn_learn) — datasets, structure learning, the benchmark suite.
//! * [`compiler`](spn_compiler) — compilation of SPNs to the custom VLIW ISA.
//! * [`processor`](spn_processor) — cycle-accurate simulator of the SPN processor.
//! * [`platforms`](spn_platforms) — the two-phase `Backend`/`Engine`
//!   execution API with CPU, GPU and custom-processor backends.
//!
//! The central abstraction is the compile-once / execute-many engine:
//! compile a circuit into an [`platforms::Engine`](spn_platforms::Engine)
//! once, then stream [`core::EvidenceBatch`](spn_core::EvidenceBatch)es
//! through it.  See the crate-level docs of `spn-platforms` and the
//! repository README for the full tour.

pub use spn_compiler as compiler;
pub use spn_core as core;
pub use spn_learn as learn;
pub use spn_platforms as platforms;
pub use spn_processor as processor;
