//! Umbrella crate for the SPN custom-processor reproduction.
//!
//! Re-exports the workspace crates under one roof so examples and downstream
//! users can depend on a single crate:
//!
//! * [`core`] — SPN representation, inference, batched evidence,
//!   flattening, query modes.
//! * [`learn`] — datasets, structure learning, the benchmark suite.
//! * [`compiler`] — compilation of SPNs to the custom VLIW ISA.
//! * [`processor`] — cycle-accurate simulator of the SPN processor.
//! * [`platforms`] — the two-phase `Backend`/`Engine` execution API with
//!   CPU, GPU and custom-processor backends, parallel sharded execution and
//!   the query-mode layer.
//! * [`serve`] — the multi-model inference service: model registry with
//!   shared compiled artifacts, dynamic micro-batcher, and the
//!   line-delimited JSON TCP front-end.
//!
//! The central abstraction is the compile-once / execute-many engine:
//! compile a circuit into an [`platforms::Engine`] once, then stream
//! [`core::EvidenceBatch`]es through it — serially, sharded across a worker
//! pool ([`platforms::Engine::execute_batch_parallel`]), or per query mode
//! ([`platforms::Engine::execute_query`]).  See the crate-level docs of
//! `spn-platforms`, `docs/ARCHITECTURE.md` and the repository README for
//! the full tour.

pub use spn_compiler as compiler;
pub use spn_core as core;
pub use spn_learn as learn;
pub use spn_platforms as platforms;
pub use spn_processor as processor;
pub use spn_serve as serve;
