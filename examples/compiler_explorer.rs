//! Looks inside the compiler: how operations get packed into PE-tree tiles,
//! how much memory traffic the schedule needs, and what the emitted VLIW
//! program looks like for the Ptree and Pvect configurations.
//!
//! Run with `cargo run --example compiler_explorer`.

use rand::rngs::StdRng;
use rand::SeedableRng;
use spn_accel::compiler::{Compiler, CompilerOptions};
use spn_accel::core::random::{random_spn, RandomSpnConfig};
use spn_accel::core::stats::SpnStats;
use spn_accel::processor::ProcessorConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(2024);
    let spn = random_spn(&RandomSpnConfig::with_vars(48), &mut rng);
    let stats = SpnStats::from_spn(&spn);
    println!("workload: {stats}\n");

    for config in [ProcessorConfig::pvect(), ProcessorConfig::ptree()] {
        let compiled = Compiler::new(config.clone()).compile(&spn)?;
        let report = &compiled.report;
        println!("== {} ({} PEs) ==", config.name, config.num_pes());
        println!("  {report}");
        println!(
            "  ops per tile: {:.2}   ops per instruction: {:.2}   peak live offsets: {}/{}",
            report.ops_per_tile(),
            report.ops_per_instruction(),
            report.peak_live_offsets,
            config.regs_per_bank,
        );
        println!(
            "  program: {} instructions, {} data-memory rows, {} stalls\n",
            compiled.program.len(),
            compiled.program.memory_rows_used,
            compiled.program.stall_instructions(),
        );
    }

    // Tile depth sweep: the heart of the Ptree-vs-Pvect comparison.
    println!("tile-depth sweep on Ptree hardware:");
    for depth in 1..=4 {
        let compiled = Compiler::with_options(
            ProcessorConfig::ptree(),
            CompilerOptions {
                max_tile_depth: Some(depth),
                ..Default::default()
            },
        )
        .compile(&spn)?;
        println!(
            "  depth {depth}: {} tiles, {} instructions, {:.2} ops/instruction",
            compiled.report.tiles,
            compiled.report.instructions,
            compiled.report.ops_per_instruction(),
        );
    }
    Ok(())
}
