//! The accuracy/throughput trade-off of emulated PE precisions.
//!
//! The paper's processor runs its PE trees in custom reduced-precision
//! floats chosen per application; this example reproduces that trade-off in
//! software.  It sweeps a set of precisions — IEEE f64/f32 and a ladder of
//! custom `e<exp>m<mant>` formats down to the paper's 8-bit-exponent /
//! 10-bit-mantissa configuration — over two workloads:
//!
//! * a random benchmark circuit in the **linear** domain, where quantization
//!   costs a bounded *relative* error per operation, and
//! * a 900-level deep chain in the **log** domain, where the same formats
//!   quantize log-probabilities (the paper's log-encoded alternative) and
//!   the linear values would underflow any reduced exponent range.
//!
//! For each configuration it reports queries/sec on the CPU model and the
//! max relative error against the exact f64 oracle — the curve that tells
//! you how few mantissa bits a deployment can afford.
//!
//! Run with `cargo run --release --example precision_sweep`.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;
use spn_accel::core::query::reference_query_with;
use spn_accel::core::random::{deep_chain_spn, random_spn, RandomSpnConfig};
use spn_accel::core::{Evidence, EvidenceBatch, NumericMode, Precision, QueryBatch, Spn};
use spn_accel::platforms::{CpuModel, Engine, EngineOptions};

/// A mixed batch of partial and complete observations.  (A fully
/// marginalised batch would be a bad probe: a normalised SPN's partition
/// function re-rounds to exactly 1.0 at every precision.)
fn build_batch(num_vars: usize, queries: usize) -> EvidenceBatch {
    let mut batch = EvidenceBatch::with_capacity(num_vars, queries);
    for q in 0..queries {
        match q % 3 {
            0 => batch
                .push_assignment(&(0..num_vars).map(|v| (q + v) % 3 != 0).collect::<Vec<_>>())
                .expect("arity"),
            1 => {
                let mut e = Evidence::marginal(num_vars);
                e.observe(q % num_vars, q % 2 == 0);
                batch.push(&e).expect("arity");
            }
            _ => batch.push_marginal(),
        }
    }
    batch
}

fn sweep(label: &str, spn: &Spn, numeric: NumericMode) {
    let precisions = [
        Precision::F64,
        Precision::F32,
        Precision::custom(8, 16).expect("valid format"),
        Precision::E8M10,
        Precision::custom(8, 5).expect("valid format"),
    ];
    let batch = build_batch(spn.num_vars(), 512);
    let oracle = reference_query_with(spn, &QueryBatch::Marginal(batch.clone()), numeric)
        .expect("oracle answers");

    println!("\n== {label} ({numeric} domain) ==");
    println!(
        "{:>10} {:>14} {:>16}",
        "precision", "queries/sec", "max rel error"
    );
    for precision in precisions {
        let mut engine = Engine::new(
            CpuModel::new(),
            spn,
            EngineOptions::default().mode(numeric).precision(precision),
        )
        .expect("compiles");
        let out = engine.execute_batch(&batch).expect("executes");
        let max_rel_error = out
            .values
            .iter()
            .zip(&oracle.values)
            .map(|(got, want)| {
                if got.to_bits() == want.to_bits() {
                    0.0
                } else {
                    (got - want).abs() / want.abs().max(1e-300)
                }
            })
            .fold(0.0, f64::max);

        let start = Instant::now();
        let rounds = 40;
        for _ in 0..rounds {
            engine.execute_batch(&batch).expect("executes");
        }
        let qps = (rounds * batch.len()) as f64 / start.elapsed().as_secs_f64();
        println!(
            "{:>10} {:>14.0} {:>16.3e}",
            precision.name(),
            qps,
            max_rel_error
        );
    }
}

fn main() {
    // Linear domain: relative error grows as mantissa bits shrink; the
    // exponent range is irrelevant while values stay near [1e-8, 1].
    let spn = random_spn(
        &RandomSpnConfig::with_vars(12),
        &mut StdRng::seed_from_u64(3),
    );
    sweep("random-12var", &spn, NumericMode::Linear);

    // Log domain on a deep chain: the linear values underflow (f64 gives
    // exactly 0.0 from level ~400 on; an 8-bit exponent flushes after ~20
    // levels), while log-domain quantization keeps every format finite and
    // errors stay proportional to the format's unit roundoff.
    let chain = deep_chain_spn(900, 1e-3);
    sweep("deep-chain-900", &chain, NumericMode::Log);

    println!(
        "\nThe error column is the paper's accuracy-vs-bit-width curve: each \
         halving of the\nmantissa roughly doubles the exponent of the error \
         while the modelled PE datapath\nshrinks; pick the narrowest format \
         whose error your application tolerates."
    );
}
