//! The paper's motivating scenario: a hybrid system where a neural network
//! handles perception and a probabilistic model reasons about what to do.
//!
//! A small rover fuses three noisy obstacle detectors (front camera, lidar,
//! bumper) with a prior over terrain difficulty.  The probabilistic model is
//! learned from (synthetic) experience as a Chow-Liu tree, compiled to an
//! SPN, and the safety query "is the path blocked given the sensors?" is
//! executed both in software and on the simulated SPN processor.
//!
//! Run with `cargo run --example robot_reasoning`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use spn_accel::core::{Evidence, EvidenceBatch};
use spn_accel::learn::chow_liu::ChowLiuTree;
use spn_accel::learn::dataset::Dataset;
use spn_accel::platforms::{Engine, EngineOptions, ProcessorBackend};

// Variable indices of the model.
const BLOCKED: usize = 0;
const ROUGH_TERRAIN: usize = 1;
const CAMERA: usize = 2;
const LIDAR: usize = 3;
const BUMPER: usize = 4;

/// Simulates field experience: the ground truth (blocked, rough terrain) and
/// the noisy sensor readings derived from it.
fn collect_experience(rows: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut data = Vec::with_capacity(rows);
    for _ in 0..rows {
        let rough = rng.gen_bool(0.3);
        let blocked = rng.gen_bool(if rough { 0.5 } else { 0.15 });
        let camera = rng.gen_bool(if blocked { 0.85 } else { 0.10 });
        let lidar = rng.gen_bool(if blocked { 0.92 } else { 0.05 });
        let bumper = rng.gen_bool(if blocked { 0.30 } else { 0.01 });
        data.push(vec![blocked, rough, camera, lidar, bumper]);
    }
    Dataset::new(5, data)
}

fn main() -> Result<(), Box<dyn std::error::Error + Send + Sync>> {
    let experience = collect_experience(4000, 7);
    let tree = ChowLiuTree::learn(&experience);
    let spn = tree.to_spn();
    println!(
        "learned reasoning model: {} nodes over {} variables",
        spn.num_nodes(),
        spn.num_vars()
    );

    // Deployment-time query: camera and lidar fire, bumper silent.
    let mut sensors = Evidence::marginal(5);
    sensors.observe(CAMERA, true);
    sensors.observe(LIDAR, true);
    sensors.observe(BUMPER, false);
    let mut blocked_and_sensors = sensors.clone();
    blocked_and_sensors.observe(BLOCKED, true);
    let p_blocked = spn.evaluate(&blocked_and_sensors)? / spn.evaluate(&sensors)?;
    println!("P(path blocked | sensors) = {p_blocked:.3}");

    let mpe = spn.mpe(&sensors)?;
    println!(
        "most probable explanation: blocked={} rough_terrain={}",
        mpe.assignment[BLOCKED], mpe.assignment[ROUGH_TERRAIN]
    );

    // The same query on the accelerator (this is what would run on-board):
    // compile the model once, then ship both sub-queries as one batch.
    let mut engine = Engine::new(ProcessorBackend::ptree(), &spn, EngineOptions::default())?;
    let batch = EvidenceBatch::from_evidences(5, &[blocked_and_sensors, sensors])?;
    let result = engine.execute_batch(&batch)?;
    let hw_p_blocked = result.values[0] / result.values[1];
    println!(
        "on the SPN processor:      = {:.3}  ({:.2} ops/cycle, {:.0} cycles per query)",
        hw_p_blocked,
        result.perf.ops_per_cycle(),
        result.perf.cycles_per_query()
    );
    assert!((hw_p_blocked - p_blocked).abs() < 1e-9);
    Ok(())
}
