//! Quickstart: build a tiny SPN, query it, compile it for the custom
//! processor and check that the simulated hardware computes the same value.
//!
//! Run with `cargo run --example quickstart`.

use spn_accel::core::{Evidence, SpnBuilder, VarId};
use spn_accel::platforms::{Engine, EngineOptions, ProcessorBackend};

fn main() -> Result<(), Box<dyn std::error::Error + Send + Sync>> {
    // A two-variable mixture: P(rain, sprinkler).
    let mut b = SpnBuilder::new(2);
    let rain = b.indicator(VarId(0), true);
    let no_rain = b.indicator(VarId(0), false);
    let sprinkler = b.indicator(VarId(1), true);
    let no_sprinkler = b.indicator(VarId(1), false);
    let wet_season = b.product(vec![rain, no_sprinkler])?;
    let dry_season = b.product(vec![no_rain, sprinkler])?;
    let neither = b.product(vec![no_rain, no_sprinkler])?;
    let root = b.sum(vec![(wet_season, 0.45), (dry_season, 0.35), (neither, 0.2)])?;
    let spn = b.finish(root)?;

    // Exact inference in software.
    let evidence = Evidence::from_assignment(&[true, false]);
    let p = spn.evaluate(&evidence)?;
    println!("P(rain, no sprinkler)          = {p:.4}");
    let mut partial = Evidence::marginal(2);
    partial.observe(0, true);
    println!(
        "P(rain)                        = {:.4}",
        spn.evaluate(&partial)?
    );

    // Phase 1: compile once for the Ptree configuration.  The engine caches
    // the VLIW program and reusable simulator buffers behind one handle.
    let mut engine = Engine::new(ProcessorBackend::ptree(), &spn, EngineOptions::default())?;
    // Phase 2: execute as many queries as you like against the cached program.
    let (output, perf) = engine.execute(&evidence)?;
    println!("processor output               = {output:.4}");
    println!(
        "processor throughput           = {:.2} ops/cycle over {} cycles",
        perf.ops_per_cycle(),
        perf.cycles
    );
    println!("compiler: {}", engine.compiled().report);
    assert!((output - p).abs() < 1e-12);
    Ok(())
}
