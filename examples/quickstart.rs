//! Quickstart: build a tiny SPN, query it, compile it for the custom
//! processor and check that the simulated hardware computes the same value.
//!
//! Run with `cargo run --example quickstart`.

use spn_accel::compiler::Compiler;
use spn_accel::core::{Evidence, SpnBuilder, VarId};
use spn_accel::processor::{Processor, ProcessorConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A two-variable mixture: P(rain, sprinkler).
    let mut b = SpnBuilder::new(2);
    let rain = b.indicator(VarId(0), true);
    let no_rain = b.indicator(VarId(0), false);
    let sprinkler = b.indicator(VarId(1), true);
    let no_sprinkler = b.indicator(VarId(1), false);
    let wet_season = b.product(vec![rain, no_sprinkler])?;
    let dry_season = b.product(vec![no_rain, sprinkler])?;
    let neither = b.product(vec![no_rain, no_sprinkler])?;
    let root = b.sum(vec![(wet_season, 0.45), (dry_season, 0.35), (neither, 0.2)])?;
    let spn = b.finish(root)?;

    // Exact inference in software.
    let evidence = Evidence::from_assignment(&[true, false]);
    let p = spn.evaluate(&evidence)?;
    println!("P(rain, no sprinkler)          = {p:.4}");
    let mut partial = Evidence::marginal(2);
    partial.observe(0, true);
    println!("P(rain)                        = {:.4}", spn.evaluate(&partial)?);

    // Compile for the Ptree configuration and run on the simulator.
    let config = ProcessorConfig::ptree();
    let compiled = Compiler::new(config.clone()).compile(&spn)?;
    let processor = Processor::new(config)?;
    let run = processor.run(&compiled.program, &compiled.input_values(&evidence)?)?;
    println!("processor output               = {:.4}", run.output);
    println!(
        "processor throughput           = {:.2} ops/cycle over {} cycles",
        run.perf.ops_per_cycle(),
        run.perf.cycles
    );
    println!("compiler: {}", compiled.report);
    assert!((run.output - p).abs() < 1e-12);
    Ok(())
}
