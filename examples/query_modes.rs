//! Query modes and parallel sharded execution through one compiled engine.
//!
//! Builds a small weather model P(rain, sprinkler, wet-grass), compiles it
//! once for the custom processor, then answers all four query modes —
//! joint, marginal, MAP and conditional — and finally pushes a large
//! marginal batch through the sharded worker-pool path.
//!
//! Run with `cargo run --release --example query_modes`.

use spn_accel::core::{
    ConditionalBatch, Evidence, EvidenceBatch, NumericMode, QueryBatch, SpnBuilder, VarId,
};
use spn_accel::platforms::{Engine, EngineOptions, Parallelism, ProcessorBackend};

const RAIN: usize = 0;
const SPRINKLER: usize = 1;
const WET: usize = 2;

/// A three-variable mixture: it rains 30% of the time; the sprinkler runs
/// mostly on dry days; grass is wet whenever either happened.
fn weather_spn() -> Result<spn_accel::core::Spn, spn_accel::core::SpnError> {
    let mut b = SpnBuilder::new(3);
    let rain = b.indicator(VarId(RAIN as u32), true);
    let dry = b.indicator(VarId(RAIN as u32), false);
    let on = b.indicator(VarId(SPRINKLER as u32), true);
    let off = b.indicator(VarId(SPRINKLER as u32), false);
    let wet = b.indicator(VarId(WET as u32), true);
    let parched = b.indicator(VarId(WET as u32), false);

    // Rainy days: sprinkler almost always off, grass wet.
    let rain_sprinkler = b.sum(vec![(on, 0.05), (off, 0.95)])?;
    let rain_wet = b.sum(vec![(wet, 0.95), (parched, 0.05)])?;
    let rainy = b.product(vec![rain, rain_sprinkler, rain_wet])?;
    // Dry days: sprinkler on 40% of the time; wet grass tracks the sprinkler.
    let dry_on = b.product(vec![on, wet])?;
    let dry_off_wet = b.sum(vec![(wet, 0.1), (parched, 0.9)])?;
    let dry_off = b.product(vec![off, dry_off_wet])?;
    let dry_mix = b.sum(vec![(dry_on, 0.4), (dry_off, 0.6)])?;
    let dry_day = b.product(vec![dry, dry_mix])?;

    let root = b.sum(vec![(rainy, 0.3), (dry_day, 0.7)])?;
    b.finish(root)
}

fn main() -> Result<(), Box<dyn std::error::Error + Send + Sync>> {
    let spn = weather_spn()?;
    // Compile once for the paper's processor; every query below reuses the
    // same artifact (MAP lazily adds a max-product variant on first use).
    let mut engine = Engine::new(ProcessorBackend::ptree(), &spn, EngineOptions::default())?;

    // Joint: the probability of one fully observed day.
    let mut joint = EvidenceBatch::new(3);
    joint.push_assignment(&[true, false, true])?;
    let out = engine.execute_query(&QueryBatch::Joint(joint))?;
    println!("P(rain, no sprinkler, wet)      = {:.4}", out.values[0]);

    // Marginal: unobserved variables are summed out in the same pass.
    let mut wet_only = Evidence::marginal(3);
    wet_only.observe(WET, true);
    let mut marginal = EvidenceBatch::new(3);
    marginal.push(&wet_only)?;
    let out = engine.execute_query(&QueryBatch::Marginal(marginal))?;
    println!("P(wet grass)                    = {:.4}", out.values[0]);

    // Conditional: explaining away, as a ratio of two passes.
    let mut rain_q = Evidence::marginal(3);
    rain_q.observe(RAIN, true);
    let mut cond = ConditionalBatch::new(3);
    cond.push(&rain_q, &wet_only)?;
    let mut wet_and_on = wet_only.clone();
    wet_and_on.observe(SPRINKLER, true);
    cond.push(&rain_q, &wet_and_on)?;
    let out = engine.execute_query(&QueryBatch::Conditional(cond))?;
    println!("P(rain | wet)                   = {:.4}", out.values[0]);
    println!(
        "P(rain | wet, sprinkler on)     = {:.4}  (explained away)",
        out.values[1]
    );

    // MAP: the most probable completion of what we observed.
    let mut map = EvidenceBatch::new(3);
    map.push(&wet_only)?;
    let out = engine.execute_query(&QueryBatch::Map(map))?;
    let assignment = &out.assignments.as_ref().expect("MAP returns assignments")[0];
    println!(
        "argmax P(rain, sprinkler | wet) = rain={}, sprinkler={} (p = {:.4})",
        assignment[RAIN], assignment[SPRINKLER], out.values[0]
    );

    // Parallel sharded execution: one big batch across a fixed worker pool.
    // Results are bit-for-bit identical to the serial path.
    let big = EvidenceBatch::marginals(3, 4096);
    let serial = engine.execute_batch(&big)?;
    let parallel = engine.execute_batch_parallel(&big, &Parallelism::workers(4))?;
    assert_eq!(serial.values, parallel.values);
    assert_eq!(serial.perf, parallel.perf);
    println!(
        "parallel batch: {} queries over 4 workers, {} cycles/query, identical to serial",
        parallel.perf.queries,
        parallel.perf.cycles_per_query()
    );

    // Numeric modes: a 1200-level chain of 1e-3 weights underflows linear
    // f64 — the log-domain engine (same processor backend, log-sum-exp PEs)
    // keeps it finite.
    let chain = spn_accel::core::random::deep_chain_spn(1200, 1e-3);
    let x_true = Evidence::from_assignment(&[true]);
    let mut linear_chain =
        Engine::new(ProcessorBackend::ptree(), &chain, EngineOptions::default())?;
    let mut log_chain = Engine::new(
        ProcessorBackend::ptree(),
        &chain,
        EngineOptions::default().mode(NumericMode::Log),
    )?;
    let (underflowed, _) = linear_chain.execute(&x_true)?;
    let (ln_p, _) = log_chain.execute(&x_true)?;
    assert_eq!(underflowed, 0.0);
    assert!(ln_p.is_finite());
    println!("deep chain (1203 nodes): linear = {underflowed} (underflow), log = {ln_p:.1} nats");
    Ok(())
}
