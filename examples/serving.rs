//! The serving stack end to end: registry, micro-batcher, TCP front-end.
//!
//! Registers two models with an in-process [`Service`], fires a burst of
//! concurrent mixed-mode requests through the line-delimited JSON TCP
//! server, then prints the per-model/per-mode serving metrics — including
//! the micro-batch coalescing counters.
//!
//! Run with `cargo run --release --example serving`.  Pass a bind address
//! (e.g. `cargo run --release --example serving -- 127.0.0.1:7879`) to keep
//! the server in the foreground instead, ready for external clients:
//!
//! ```sh
//! printf '{"id":1,"model":"banknote","mode":"marginal","rows":["1???"]}\n' | nc 127.0.0.1 7879
//! ```

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use spn_accel::core::wire::QueryRequest;
use spn_accel::core::{QueryMode, SampleMethod, SampleSpec};
use spn_accel::learn::Benchmark;
use spn_accel::platforms::{CpuModel, Parallelism};
use spn_accel::serve::tcp::{decode_response, encode_request};
use spn_accel::serve::{BatchPolicy, Service, ServiceConfig, TcpServer};

fn main() -> Result<(), Box<dyn std::error::Error + Send + Sync>> {
    // One batcher worker with a 10 ms window makes coalescing easy to see.
    let service = Arc::new(Service::new(
        CpuModel::new(),
        ServiceConfig {
            workers: 1,
            policy: BatchPolicy {
                max_batch_queries: 128,
                max_wait: Duration::from_millis(10),
            },
            parallelism: Parallelism::serial(),
            artifact_capacity: 8,
            ..ServiceConfig::default()
        },
    ));
    let banknote = Benchmark::Banknote.spn();
    let cpu_perf = Benchmark::Cpu.spn();
    println!(
        "registering banknote ({} vars) and cpu-perf ({} vars)",
        banknote.num_vars(),
        cpu_perf.num_vars()
    );
    service.register("banknote", &banknote);
    service.register("cpu-perf", &cpu_perf);

    // With an explicit bind address, stay up and serve external clients.
    if let Some(bind) = std::env::args().nth(1) {
        let server = TcpServer::spawn(Arc::clone(&service), &bind)?;
        println!("serving on {} — press Ctrl-C to stop", server.local_addr());
        loop {
            std::thread::sleep(Duration::from_secs(60));
        }
    }

    let mut server = TcpServer::spawn(Arc::clone(&service), "127.0.0.1:0")?;
    let addr = server.local_addr();
    println!("serving on {addr}\n");

    // 24 concurrent clients, cycling models and all six query modes.
    let models = [
        ("banknote", banknote.num_vars()),
        ("cpu-perf", cpu_perf.num_vars()),
    ];
    let clients: Vec<_> = (0..24u64)
        .map(|id| {
            let (model, num_vars) = models[(id as usize) % models.len()];
            std::thread::spawn(
                move || -> Result<String, Box<dyn std::error::Error + Send + Sync>> {
                    let mode = QueryMode::ALL[(id as usize) % QueryMode::ALL.len()];
                    let marginal = "?".repeat(num_vars);
                    let mut partial: Vec<char> = vec!['?'; num_vars];
                    partial[(id as usize) % num_vars] = '1';
                    let partial: String = partial.into_iter().collect();
                    let request = match mode {
                        QueryMode::Joint => QueryRequest::from_rows(
                            id,
                            model,
                            mode,
                            &[&"1".repeat(num_vars)],
                            None,
                        )?,
                        QueryMode::Conditional => QueryRequest::from_rows(
                            id,
                            model,
                            mode,
                            &[&partial],
                            Some(&[&marginal]),
                        )?,
                        QueryMode::Sample | QueryMode::Expectation => {
                            QueryRequest::from_rows_with_spec(
                                id,
                                model,
                                mode,
                                &[&partial],
                                None,
                                SampleSpec {
                                    seed: id,
                                    n_samples: 64,
                                    method: SampleMethod::LikelihoodWeighted,
                                },
                            )?
                        }
                        _ => QueryRequest::from_rows(id, model, mode, &[&partial], None)?,
                    };
                    let mut stream = TcpStream::connect(addr)?;
                    stream.write_all(encode_request(&request).as_bytes())?;
                    stream.write_all(b"\n")?;
                    let mut reply = String::new();
                    BufReader::new(stream).read_line(&mut reply)?;
                    let response = decode_response(reply.trim())?;
                    let spread = response
                        .std_err
                        .as_ref()
                        .map(|s| format!(" ± {:.4} ({} samples)", s[0], response.samples))
                        .unwrap_or_default();
                    Ok(format!(
                        "request {:>2} {:<10} {:<12} -> {:.6}{}{}",
                        id,
                        model,
                        mode.name(),
                        response.values[0],
                        spread,
                        response
                            .assignments
                            .map(|a| format!(
                                "  ({}: {})",
                                if mode == QueryMode::Map {
                                    "MAP"
                                } else {
                                    "draw 0"
                                },
                                a[0].iter()
                                    .map(|&b| if b { '1' } else { '0' })
                                    .collect::<String>()
                            ))
                            .unwrap_or_default(),
                    ))
                },
            )
        })
        .collect();
    for client in clients {
        println!("{}", client.join().expect("client thread")?);
    }

    println!("\nper-model / per-mode serving metrics:");
    println!("| model | mode | requests | batches | coalesced | max req/batch | mean lat |");
    println!("|---|---|---|---|---|---|---|");
    for record in service.metrics() {
        let s = &record.stats;
        println!(
            "| {} | {} | {} | {} | {} | {} | {:.2?} |",
            record.model,
            record.mode.name(),
            s.requests,
            s.batches,
            s.coalesced_batches,
            s.max_batch_requests,
            s.mean_latency(),
        );
    }

    server.shutdown();
    service.shutdown();
    println!("\nshut down cleanly");
    Ok(())
}
