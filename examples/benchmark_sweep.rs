//! Sweeps a subset of the paper's benchmark circuits across all four
//! platforms (CPU model, GPU model, Pvect, Ptree) and prints a Fig.-4-style
//! table.  The full nine-benchmark sweep lives in the `fig4` binary of the
//! `spn-bench` crate; this example keeps to the small circuits so it runs in
//! seconds even in debug builds.
//!
//! Run with `cargo run --release --example benchmark_sweep`.

use spn_accel::compiler::Compiler;
use spn_accel::core::flatten::OpList;
use spn_accel::core::stats::SpnStats;
use spn_accel::core::Evidence;
use spn_accel::learn::Benchmark;
use spn_accel::platforms::{CpuModel, GpuModel, Platform};
use spn_accel::processor::{Processor, ProcessorConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("| benchmark | ops | groups | CPU | GPU | Pvect | Ptree | Ptree/CPU |");
    println!("|---|---|---|---|---|---|---|---|");
    for benchmark in [
        Benchmark::Banknote,
        Benchmark::EegEye,
        Benchmark::Msnbc,
        Benchmark::Cpu,
    ] {
        let spn = benchmark.spn();
        let stats = SpnStats::from_spn(&spn);
        let ops = OpList::from_spn(&spn);
        let evidence = Evidence::marginal(spn.num_vars());

        let (_, cpu) = CpuModel::new().execute(&ops, &evidence)?;
        let (_, gpu) = GpuModel::new().execute(&ops, &evidence)?;

        let mut custom = Vec::new();
        for config in [ProcessorConfig::pvect(), ProcessorConfig::ptree()] {
            let compiled = Compiler::new(config.clone()).compile_op_list(ops.clone())?;
            let processor = Processor::new(config)?;
            let run = processor.run(&compiled.program, &compiled.input_values(&evidence)?)?;
            custom.push(run.perf.ops_per_cycle());
        }

        println!(
            "| {} | {} | {} | {:.2} | {:.2} | {:.2} | {:.2} | {:.1}x |",
            benchmark.name(),
            stats.num_ops,
            stats.num_groups,
            cpu.ops_per_cycle(),
            gpu.ops_per_cycle(),
            custom[0],
            custom[1],
            custom[1] / cpu.ops_per_cycle(),
        );
    }
    Ok(())
}
