//! Sweeps a subset of the paper's benchmark circuits across all four
//! platforms (CPU model, GPU model, Pvect, Ptree) and prints a Fig.-4-style
//! table.  The full nine-benchmark sweep lives in the `fig4` binary of the
//! `spn-bench` crate; this example keeps to the small circuits so it runs in
//! seconds even in debug builds.
//!
//! Run with `cargo run --release --example benchmark_sweep`.

use spn_accel::core::flatten::OpList;
use spn_accel::core::stats::SpnStats;
use spn_accel::core::EvidenceBatch;
use spn_accel::learn::Benchmark;
use spn_accel::platforms::{Backend, CpuModel, Engine, GpuModel, ProcessorBackend};

/// Compiles `ops` for `backend` and returns ops/cycle over a small batch.
fn throughput<B: Backend>(
    backend: B,
    ops: &OpList,
    batch: &EvidenceBatch,
) -> Result<f64, spn_accel::platforms::BackendError> {
    let mut engine = Engine::from_ops(backend, ops)?;
    Ok(engine.execute_batch(batch)?.perf.ops_per_cycle())
}

fn main() -> Result<(), Box<dyn std::error::Error + Send + Sync>> {
    println!("| benchmark | ops | groups | CPU | GPU | Pvect | Ptree | Ptree/CPU |");
    println!("|---|---|---|---|---|---|---|---|");
    for benchmark in [
        Benchmark::Banknote,
        Benchmark::EegEye,
        Benchmark::Msnbc,
        Benchmark::Cpu,
    ] {
        let spn = benchmark.spn();
        let stats = SpnStats::from_spn(&spn);
        let ops = OpList::from_spn(&spn);
        let batch = EvidenceBatch::marginals(spn.num_vars(), 4);

        let cpu = throughput(CpuModel::new(), &ops, &batch)?;
        let gpu = throughput(GpuModel::new(), &ops, &batch)?;
        let pvect = throughput(ProcessorBackend::pvect(), &ops, &batch)?;
        let ptree = throughput(ProcessorBackend::ptree(), &ops, &batch)?;

        println!(
            "| {} | {} | {} | {:.2} | {:.2} | {:.2} | {:.2} | {:.1}x |",
            benchmark.name(),
            stats.num_ops,
            stats.num_groups,
            cpu,
            gpu,
            pvect,
            ptree,
            ptree / cpu,
        );
    }
    Ok(())
}
